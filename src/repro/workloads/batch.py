"""Numpy-batched synthetic trace generation (the throughput fast path).

:func:`repro.workloads.synthetic.interleave` draws every record through
``random.Random`` one call at a time; that stream is the repo's
*bit-identical contract* (the golden tests pin simulations on it), so it
can never be re-ordered into vectorized draws.  For workloads where the
contract does not matter — microbenchmarks, capacity planning, soak
traffic — this module generates records in numpy chunks instead: one
vectorized draw per chunk for the mix choice, the bubbles and every
pattern's addresses, so record production stops dominating short runs.

The stream is fully deterministic and — like the scalar generators —
identified by ``seed`` alone: the same seed yields the same trace
regardless of ``chunk``.  That holds because every consumer of
randomness owns its own ``numpy.random.PCG64`` stream (one for the mix
picks, one for the bubbles, one per lane, each derived from ``seed``),
and each stream is consumed strictly in record order, so splitting a
draw of ``k`` values into ``k1 + k2`` produces the same values.  The
stream is still deliberately **not** bit-identical with ``interleave``
(vectorized draws are ordered differently from the scalar one-call-per-
record walk): treat it as a different workload family, not a faster
spelling of the same trace — see docs/performance.md ("Batched
engine") for the equivalence contract.  ``python -m repro bench``
measures both generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

import numpy as np

from ..cpu.trace import TraceRecord
from ..memory.address import BLOCK_BITS, BLOCKS_PER_PAGE

_PC_BASE = 0x400000
_PC_STRIDE = 0x40

#: Records generated per vectorized draw.
DEFAULT_CHUNK = 16_384


@dataclass
class BatchMix:
    """One vectorizable pattern plus its interleave weight.

    ``kind`` selects the address formula:

    * ``stream``  — ``stride``-block runs over a ``span`` region that
      hops by ``hop`` blocks when exhausted (sequential/strided sweeps)
    * ``chase``   — a fixed random permutation ring of ``blocks`` blocks
    * ``hotset``  — skewed reuse over ``blocks`` hot blocks
    * ``random``  — uniform blocks over a ``blocks``-block footprint
    """

    kind: str
    weight: float = 1.0
    bubble_mean: int = 4
    pc_pool: int = 4
    params: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ("stream", "chase", "hotset", "random"):
            raise ValueError(f"unknown batch pattern kind {self.kind!r}")
        if self.weight <= 0:
            raise ValueError("pattern weight must be positive")
        if self.bubble_mean < 0:
            raise ValueError("bubble mean must be non-negative")
        if self.pc_pool < 1:
            raise ValueError("need at least one PC per pattern")


class _LaneState:
    """Per-mix vectorized generator state.

    Each lane owns a PCG64 stream derived from the trace seed and its
    slot, consumed strictly in lane-record order (a fixed number of
    draws per record), so a lane's address stream is independent of how
    the surrounding trace is chunked.
    """

    __slots__ = (
        "mix", "base_block", "position", "pc_base", "ring", "stride", "span", "hop", "rng",
    )

    def __init__(self, slot: int, mix: BatchMix, seed: int) -> None:
        self.mix = mix
        self.position = 0
        self.pc_base = _PC_BASE + 0x10000 * slot
        # Disjoint 16 Mi-page regions per lane, as the scalar recipes use.
        self.base_block = (1 + slot * (1 << 24)) * BLOCKS_PER_PAGE
        params = mix.params
        self.stride = int(params.get("stride", 1))
        self.span = int(params.get("span", 128)) * BLOCKS_PER_PAGE
        self.hop = int(params.get("hop", 1024)) * BLOCKS_PER_PAGE
        self.rng = np.random.Generator(np.random.PCG64(seed + 11 + 2 * slot))
        if mix.kind == "chase":
            blocks = int(params.get("blocks", 1 << 15))
            self.ring = self.rng.permutation(blocks)
        else:
            self.ring = None

    def addresses(self, count: int) -> np.ndarray:
        mix = self.mix
        base = self.base_block
        positions = self.position + np.arange(count, dtype=np.int64)
        self.position += count
        if mix.kind == "stream":
            offsets = positions * self.stride
            blocks = base + (offsets % self.span) + (offsets // self.span) * self.hop
        elif mix.kind == "chase":
            blocks = base + self.ring[positions % len(self.ring)]
        elif mix.kind == "hotset":
            hot = int(mix.params.get("blocks", 2048))
            # (count, 2) so each record consumes exactly two consecutive
            # draws in record order — chunk-split invariant.
            draws = self.rng.integers(0, hot, size=(count, 2))
            blocks = base + np.minimum(draws[:, 0], draws[:, 1])
        else:  # random
            footprint = int(mix.params.get("blocks", 1 << 16))
            blocks = base + self.rng.integers(0, footprint, size=count)
        return blocks << BLOCK_BITS

    def pcs(self, count: int) -> np.ndarray:
        mix = self.mix
        start = self.position - count  # position already advanced
        indices = (start + np.arange(count, dtype=np.int64)) % mix.pc_pool
        return self.pc_base + indices * _PC_STRIDE


def batch_interleave(
    mixes: Sequence[BatchMix],
    n_records: int,
    seed: int = 1,
    chunk: int = DEFAULT_CHUNK,
) -> Iterator[TraceRecord]:
    """Weave batch mixes into one deterministic trace, chunk by chunk."""
    if not mixes:
        raise ValueError("need at least one pattern")
    if n_records < 0:
        raise ValueError("record count must be non-negative")
    if chunk < 1:
        raise ValueError("chunk must be positive")
    # Separate streams per consumer: a shared rng would interleave pick
    # and bubble draws chunk-by-chunk, making the trace depend on the
    # chunk size.  With one sequential stream each, any chunking of the
    # same record prefix consumes the same values.
    pick_rng = np.random.Generator(np.random.PCG64(seed))
    bubble_rng = np.random.Generator(np.random.PCG64(seed + 3))
    lanes = [_LaneState(slot, mix, seed) for slot, mix in enumerate(mixes)]
    weights = np.array([mix.weight for mix in mixes], dtype=np.float64)
    cum = np.cumsum(weights)
    cum /= cum[-1]
    spans = np.array([2 * mix.bubble_mean + 1 for mix in mixes], dtype=np.int64)
    remaining = n_records
    while remaining > 0:
        k = min(chunk, remaining)
        remaining -= k
        picks = np.searchsorted(cum, pick_rng.random(k), side="right")
        bubbles = (bubble_rng.random(k) * spans[picks]).astype(np.int64)
        addrs = np.empty(k, dtype=np.int64)
        pcs = np.empty(k, dtype=np.int64)
        for index, lane in enumerate(lanes):
            mask = picks == index
            count = int(mask.sum())
            if count == 0:
                continue
            addrs[mask] = lane.addresses(count)
            pcs[mask] = lane.pcs(count)
        for pc, addr, bubble in zip(pcs.tolist(), addrs.tolist(), bubbles.tolist()):
            yield TraceRecord(pc, addr, bubble)


#: Batch-mix approximations of a few reference workloads, for benchmarks
#: and load generation.  These mirror the *shape* of the scalar recipes
#: (weights, working sets), not their exact address streams.
_BATCH_RECIPES: Dict[str, List[BatchMix]] = {
    "605.mcf_s": [
        BatchMix("chase", 3.0, 6, params={"blocks": 1 << 16}),
        BatchMix("chase", 1.5, 6, params={"blocks": 1 << 14}),
        BatchMix("stream", 2.0, 6, params={"stride": 7, "span": 256}),
        BatchMix("stream", 1.0, 7, params={"stride": 1, "span": 64}),
        BatchMix("hotset", 4.0, 8, params={"blocks": 1024}),
    ],
    "623.xalancbmk_s": [
        BatchMix("stream", 2.0, 6, params={"stride": 3, "span": 192}),
        BatchMix("stream", 2.0, 6, params={"stride": 5, "span": 192}),
        BatchMix("random", 1.0, 7, params={"blocks": 1 << 16}),
        BatchMix("hotset", 4.0, 8, params={"blocks": 1024}),
    ],
    "603.bwaves_s": [
        BatchMix("stream", 2.0, 6, params={"stride": 1, "span": 256}),
        BatchMix("stream", 2.0, 6, params={"stride": 2, "span": 256}),
        BatchMix("hotset", 4.0, 8, params={"blocks": 1024}),
    ],
}

_DEFAULT_RECIPE = [
    BatchMix("stream", 2.0, 6, params={"stride": 1, "span": 128}),
    BatchMix("chase", 2.0, 6, params={"blocks": 1 << 15}),
    BatchMix("hotset", 3.0, 8, params={"blocks": 2048}),
    BatchMix("random", 1.0, 7, params={"blocks": 1 << 16}),
]


def batch_trace(
    workload: str, n_records: int, seed: int = 1, chunk: int = DEFAULT_CHUNK
) -> Iterator[TraceRecord]:
    """A batched trace shaped like ``workload`` (generic when unknown)."""
    mixes = _BATCH_RECIPES.get(workload, _DEFAULT_RECIPE)
    return batch_interleave(mixes, n_records, seed=seed, chunk=chunk)
