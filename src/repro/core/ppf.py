"""PPF: the perceptron prefetch filter wrapped around a prefetcher (§3, §4).

:class:`PPF` is itself a :class:`~repro.prefetchers.base.Prefetcher`, so
the hierarchy drives it exactly like any other prefetcher.  Internally
it owns an *aggressively tuned* underlying prefetcher (SPP by default,
with its internal thresholds discarded per §4.1) and filters the
candidate stream through the hashed perceptron:

1. **Inferencing** — every candidate's features index the weight tables;
   the sum decides L2 fill / LLC fill / reject.
2. **Recording** — accepted candidates go to the Prefetch Table,
   rejected ones to the Reject Table, each with the feature indices
   needed to find the same weights again.
3. **Feedback & retrieval** — every L2 demand access and eviction is
   looked up in both tables.
4. **Training** — demand hit on a recorded prefetch → positive update;
   eviction of a never-used prefetch → negative update; demand access to
   a *rejected* block → positive update (false-negative recovery via the
   Reject Table).

An optional ``recorder`` receives every resolved training event, which
is how the §5.5 feature-correlation study observes outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..checkpoint.state import group_state, load_group
from ..prefetchers.base import PrefetchCandidate, Prefetcher
from ..prefetchers.spp import SPP, SPPConfig
from ..registry import register
from ..stats import GroupAdapter, StatGroup, StatsNode
from .features import Feature
from .filter import PREFETCH_L2_CODE, FilterConfig, PerceptronFilter
from .tables import DecisionTable, PrefetchTable, RejectTable

#: Receives (feature_indices, positive_outcome) for each resolved event.
TrainingRecorder = Callable[[Tuple[int, ...], bool], None]


@dataclass
class PPFStats(StatGroup):
    """Filter-level outcome counters beyond the shared prefetcher set."""

    #: Demand accesses that hit the Reject Table — false negatives the
    #: filter recovered from (trained positively) instead of losing.
    reject_recoveries: int = 0
    #: Accepted-but-displaced entries trained as useless prefetches.
    displacement_trainings: int = 0


class _CandidateContext:
    """Mutable stand-in for :class:`~repro.core.features.FeatureContext`.

    Feature extractors only *read* attributes, so the per-candidate loop
    reuses one of these instead of constructing a frozen dataclass per
    candidate (aggressive SPP emits several candidates per access).
    """

    __slots__ = (
        "candidate_addr",
        "trigger_addr",
        "pc",
        "pcs",
        "delta",
        "depth",
        "signature",
        "last_signature",
        "confidence",
    )

    def __init__(self) -> None:
        self.candidate_addr = 0
        self.trigger_addr = 0
        self.pc = 0
        self.pcs = (0, 0, 0)
        self.delta = 0
        self.depth = 1
        self.signature = 0
        self.last_signature = 0
        self.confidence = 0


def _table_adapter(table: DecisionTable) -> GroupAdapter:
    """Mount a decision table's event counters without resetting its
    recorded entries at the warmup boundary (state outlives stats)."""

    def snapshot():
        return {
            "inserts": table.inserts,
            "hits": table.hits,
            "conflicts": table.conflicts,
            "occupancy": table.occupancy(),
        }

    return GroupAdapter(snapshot, table.reset_counters)


class PPF(Prefetcher):
    """Perceptron-based Prefetch Filter over an underlying prefetcher."""

    name = "ppf"

    def __init__(
        self,
        underlying: Optional[Prefetcher] = None,
        features: Optional[Sequence[Feature]] = None,
        filter_config: Optional[FilterConfig] = None,
        use_reject_table: bool = True,
        train_on_displacement: bool = True,
        recorder: Optional[TrainingRecorder] = None,
    ) -> None:
        super().__init__()
        self.underlying = underlying if underlying is not None else SPP(SPPConfig.aggressive())
        self.filter = PerceptronFilter(features, filter_config)
        self.prefetch_table = PrefetchTable()
        self.reject_table = RejectTable()
        self.use_reject_table = use_reject_table
        #: When a still-unresolved Prefetch Table entry is displaced, treat
        #: it as a useless prefetch and train negatively.  At this
        #: reproduction's trace scale the L2-lifetime ≫ table-lifetime, so
        #: waiting for the eviction (as the paper describes) would starve
        #: the filter of negative feedback; the displaced metadata is the
        #: same information one table-lifetime earlier (see DESIGN.md).
        self.train_on_displacement = train_on_displacement
        self.recorder = recorder
        self.ppf_stats = PPFStats()
        self._pcs: Tuple[int, int, int] = (0, 0, 0)
        self._ctx = _CandidateContext()  # reused across candidates

    # -- main hook ---------------------------------------------------------------

    def train(
        self, addr: int, pc: int, cache_hit: bool, cycle: int
    ) -> List[PrefetchCandidate]:
        # Step 3/4 first: consume feedback for this address before the
        # demand access triggers the next set of prefetches (§3.1).
        self._train_on_demand(addr)
        pcs = (pc, self._pcs[0], self._pcs[1])
        self._pcs = pcs

        candidates = self.underlying.train(addr, pc, cache_hit, cycle)
        if not candidates:
            return candidates
        self.underlying.note_candidates(len(candidates))
        accepted: List[PrefetchCandidate] = []
        append = accepted.append
        ctx = self._ctx
        ctx.trigger_addr = addr
        ctx.pcs = pcs
        ctx.last_signature = getattr(self.underlying, "last_signature", 0)
        decide = self.filter.decide
        prefetch_insert = self.prefetch_table.insert
        use_reject = self.use_reject_table
        reject_insert = self.reject_table.insert if use_reject else None
        train_on_displacement = self.train_on_displacement
        for candidate in candidates:
            meta = candidate.meta
            meta_get = meta.get
            candidate_addr = candidate.addr
            ctx.candidate_addr = candidate_addr
            ctx.pc = meta_get("pc", pc)
            ctx.delta = meta_get("delta", 0)
            ctx.depth = meta_get("depth", 1)
            ctx.signature = meta_get("signature", 0)
            ctx.confidence = meta_get("confidence", 0)
            code, total, indices = decide(ctx)
            if code:  # accepted (L2 or LLC fill)
                displaced = prefetch_insert(candidate_addr, indices, True, total)
                if (
                    train_on_displacement
                    and displaced is not None
                    and not displaced.useful
                ):
                    self.ppf_stats.displacement_trainings += 1
                    self._apply_training(displaced.feature_indices, positive=False)
                # The filter, not SPP, owns the fill level from here on.
                candidate.fill_l2 = code == PREFETCH_L2_CODE
                append(candidate)
            elif use_reject:
                reject_insert(candidate_addr, indices, False, total)
        return accepted

    # -- feedback ----------------------------------------------------------------

    def _train_on_demand(self, addr: int) -> None:
        entry = self.prefetch_table.lookup(addr)
        if entry is not None:
            # The filter let this prefetch through and it was demanded:
            # correct positive — reinforce.
            entry.useful = True
            self._apply_training(entry.feature_indices, positive=True)
            self.prefetch_table.invalidate(addr)
        if self.use_reject_table:
            rejected = self.reject_table.lookup(addr)
            if rejected is not None:
                # False negative: the filter rejected a prefetch that the
                # program went on to demand.
                self.ppf_stats.reject_recoveries += 1
                self._apply_training(rejected.feature_indices, positive=True)
                self.reject_table.invalidate(addr)

    def on_eviction(self, addr: int, was_prefetch: bool, was_used: bool) -> None:
        super().on_eviction(addr, was_prefetch, was_used)
        self.underlying.on_eviction(addr, was_prefetch, was_used)
        if was_prefetch and not was_used:
            entry = self.prefetch_table.lookup(addr)
            if entry is not None and not entry.useful:
                # The filter accepted a prefetch that died unused:
                # misprediction — push the weights down.
                self._apply_training(entry.feature_indices, positive=False)
                self.prefetch_table.invalidate(addr)

    def _apply_training(self, indices: Tuple[int, ...], positive: bool) -> None:
        self.filter.train(indices, positive)
        if self.recorder is not None:
            self.recorder(indices, positive)

    # -- forwarding so the underlying prefetcher's state (SPP's alpha) stays live --

    def on_prefetch_issued(self, candidate: PrefetchCandidate) -> None:
        super().on_prefetch_issued(candidate)
        self.underlying.on_prefetch_issued(candidate)

    def on_useful_prefetch(self, addr: int) -> None:
        super().on_useful_prefetch(addr)
        self.underlying.on_useful_prefetch(addr)

    # -- engine seam -----------------------------------------------------------

    def engine_view(self):
        """Raw mutable state for the batched engine's fused kernel.

        Returns ``(underlying, filter, prefetch_table, reject_table,
        ppf_stats, stats, use_reject_table, train_on_displacement,
        recorder)``.  ``_pcs`` is part of the seam contract as well: the
        kernel reads it at chunk start and writes it back before
        returning (it is a tuple, so it cannot be shared in place).
        """
        return (
            self.underlying,
            self.filter,
            self.prefetch_table,
            self.reject_table,
            self.ppf_stats,
            self.stats,
            self.use_reject_table,
            self.train_on_displacement,
            self.recorder,
        )

    # -- diagnostics ----------------------------------------------------------------

    @property
    def average_lookahead_depth(self) -> float:
        """Average speculation depth of the underlying prefetcher."""
        return getattr(self.underlying, "average_lookahead_depth", 0.0)

    def reset_stats(self) -> None:
        super().reset_stats()
        self.underlying.reset_stats()
        self.ppf_stats.reset()
        self.filter.stats.reset()
        self.prefetch_table.reset_counters()
        self.reject_table.reset_counters()

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self):
        """Compose the whole mechanism: SPP, perceptron, both tables.

        ``_ctx`` is deliberately absent — it is a scratch buffer fully
        rewritten before each candidate decision.
        """
        state = super().state_dict()
        state.update(
            underlying=self.underlying.state_dict(),
            filter=self.filter.state_dict(),
            prefetch_table=self.prefetch_table.state_dict(),
            reject_table=self.reject_table.state_dict(),
            pcs=list(self._pcs),
            ppf_stats=group_state(self.ppf_stats),
        )
        return state

    def load_state(self, state) -> None:
        super().load_state(state)
        self.underlying.load_state(state["underlying"])
        self.filter.load_state(state["filter"])
        self.prefetch_table.load_state(state["prefetch_table"])
        self.reject_table.load_state(state["reject_table"])
        self._pcs = tuple(int(pc) for pc in state["pcs"])
        load_group(self.ppf_stats, state["ppf_stats"])

    def attach_stats(self, node: StatsNode) -> None:
        """Mount the filter's whole stats surface: shared prefetcher
        counters, PPF outcomes, perceptron activity and both tables."""
        super().attach_stats(node)
        node.attach("ppf", self.ppf_stats)
        node.attach("filter", self.filter.stats)
        node.attach("prefetch_table", _table_adapter(self.prefetch_table))
        node.attach("reject_table", _table_adapter(self.reject_table))
        self.underlying.attach_stats(node.child("underlying"))


@register("prefetcher", "ppf")
def make_ppf_spp(
    spp_config: Optional[SPPConfig] = None,
    features: Optional[Sequence[Feature]] = None,
    filter_config: Optional[FilterConfig] = None,
    use_reject_table: bool = True,
) -> PPF:
    """The paper's case-study configuration: PPF over aggressive SPP."""
    return PPF(
        underlying=SPP(spp_config or SPPConfig.aggressive()),
        features=features,
        filter_config=filter_config,
        use_reject_table=use_reject_table,
    )
