"""The perceptron filter: hashed-perceptron inference and training (§3.1).

Inference sums one 5-bit weight per feature table and thresholds the sum
twice:

* ``sum >= tau_hi``            → prefetch into the **L2** (high confidence)
* ``tau_lo <= sum < tau_hi``   → prefetch into the **LLC** (moderate)
* ``sum < tau_lo``             → **reject** the candidate

Training follows the perceptron learning rule with saturation guards:
on a positive outcome weights are incremented only while the re-computed
sum is below ``theta_p``; on a negative outcome they are decremented
only while the sum is above ``theta_n``.  The guards prevent
over-training so the filter re-adapts quickly when program behaviour
shifts (§3.1, "Training").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..checkpoint.state import group_state, load_group
from ..stats import StatGroup
from .features import Feature, FeatureContext, production_features
from .weights import WEIGHT_MAX, WEIGHT_MIN, WeightTable


class Decision(Enum):
    """Where an accepted candidate fills, or that it was rejected."""

    PREFETCH_L2 = "l2"
    PREFETCH_LLC = "llc"
    REJECT = "reject"

    @property
    def accepted(self) -> bool:
        return self is not Decision.REJECT


#: Integer spellings of the three decisions for the inference fast path
#: (:meth:`PerceptronFilter.decide`): enum identity checks and property
#: lookups are measurable at millions of inferences per run.  Accepted
#: codes are truthy; ``DECISION_BY_CODE[code]`` recovers the enum.
REJECT_CODE = 0
PREFETCH_LLC_CODE = 1
PREFETCH_L2_CODE = 2
DECISION_BY_CODE = (Decision.REJECT, Decision.PREFETCH_LLC, Decision.PREFETCH_L2)


def _production_indices(ctx) -> Tuple[int, ...]:
    """All nine production feature indices in one call.

    Hand-fused version of the generic per-feature extract/mask walk,
    used only when the filter's feature set *is* the production catalog
    (same extractors, same table sizes — see ``_PRODUCTION_LANES``).
    Must stay index-for-index identical with
    :func:`repro.core.features.production_features`;
    ``tests/test_filter.py`` cross-checks the two paths.
    """
    cand = ctx.candidate_addr
    pc = ctx.pc
    pc1, pc2, pc3 = ctx.pcs
    delta = ctx.delta
    confidence = ctx.confidence
    # encode_delta, inlined: sign bit 6, magnitude saturating at 63.
    magnitude = delta if delta >= 0 else -delta
    if magnitude > 63:
        magnitude = 63
    encoded = (64 | magnitude) if delta < 0 else magnitude
    return (
        (cand >> 6) & 4095,  # phys_address
        (cand >> 12) & 4095,  # cache_line
        (cand >> 18) & 4095,  # page_address
        ((ctx.trigger_addr >> 12) ^ confidence) & 4095,  # page_xor_confidence
        (pc1 ^ (pc2 >> 1) ^ (pc3 >> 2)) & 2047,  # pc_path_hash
        (ctx.signature ^ encoded) & 2047,  # signature_xor_delta
        (pc ^ ctx.depth) & 1023,  # pc_xor_depth
        (pc ^ encoded) & 1023,  # pc_xor_delta
        confidence & 127,  # confidence
    )


#: (extract, entries) per production feature — the fused path engages
#: only on an exact match, so renamed/rescaled variants fall back to
#: the generic walk.
_PRODUCTION_LANES = tuple(
    (feature.extract, feature.table_entries) for feature in production_features()
)


@dataclass
class FilterConfig:
    """Inference and training thresholds.

    Defaults follow the reference PPF implementation: the inference
    thresholds sit slightly below zero so an untrained filter lets
    prefetches through (SPP only suggests candidates it has *some*
    confidence in), and the training thresholds stop weight movement
    once the sum is decisively correct.
    """

    tau_hi: int = -5
    tau_lo: int = -15
    theta_p: int = 90
    theta_n: int = -90

    def __post_init__(self) -> None:
        if self.tau_lo > self.tau_hi:
            raise ValueError("tau_lo must not exceed tau_hi")
        if self.theta_n > self.theta_p:
            raise ValueError("theta_n must not exceed theta_p")

    @classmethod
    def default(cls) -> "FilterConfig":
        return cls()

    @classmethod
    def single_level(cls) -> "FilterConfig":
        """Ablation: collapse the two fill thresholds into one."""
        return cls(tau_hi=-15, tau_lo=-15)


@dataclass
class FilterStats(StatGroup):
    """Inference/training counters, including a per-feature histogram."""

    derived = ("accept_rate",)

    inferences: int = 0
    accepted_l2: int = 0
    accepted_llc: int = 0
    rejected: int = 0
    positive_updates: int = 0
    negative_updates: int = 0
    suppressed_updates: int = 0  # skipped by the theta saturation guards
    #: Weight movements per feature table (saturated bumps don't count),
    #: flattened into snapshots as ``per_feature_updates.<feature>``.
    per_feature_updates: Dict[str, int] = field(default_factory=dict)

    @property
    def accept_rate(self) -> float:
        if self.inferences == 0:
            return 0.0
        return (self.accepted_l2 + self.accepted_llc) / self.inferences


class PerceptronFilter:
    """Hashed-perceptron usefulness predictor over a feature set."""

    def __init__(
        self,
        features: Optional[Sequence[Feature]] = None,
        config: Optional[FilterConfig] = None,
    ) -> None:
        self.features: List[Feature] = (
            list(features) if features is not None else production_features()
        )
        if not self.features:
            raise ValueError("perceptron filter needs at least one feature")
        self.config = config or FilterConfig.default()
        self.tables: List[WeightTable] = [
            WeightTable(feature.table_entries) for feature in self.features
        ]
        self.stats = FilterStats()
        # Hot-path caches.  The weight lists are direct references into
        # the tables (WeightTable.reset()/load() mutate in place, so
        # they never go stale); the lane tuples drop the per-candidate
        # Feature.index() method dispatch.
        self._lanes: List[Tuple] = [
            (feature.extract, feature.table_entries - 1) for feature in self.features
        ]
        self._feature_names: List[str] = [feature.name for feature in self.features]
        self._weight_lists: List[List[int]] = [table._weights for table in self.tables]
        self._fused_indices = (
            _production_indices
            if tuple(
                (feature.extract, feature.table_entries) for feature in self.features
            )
            == _PRODUCTION_LANES
            else None
        )

    # -- inference ---------------------------------------------------------------

    def feature_indices(self, ctx: FeatureContext) -> Tuple[int, ...]:
        """Compute each feature's table index for one candidate."""
        fused = self._fused_indices
        if fused is not None:
            return fused(ctx)
        return tuple(extract(ctx) & mask for extract, mask in self._lanes)

    def weight_sum(self, indices: Sequence[int]) -> int:
        """The perceptron sum for previously computed indices."""
        total = 0
        for weights, index in zip(self._weight_lists, indices):
            total += weights[index]
        return total

    def decide(self, ctx: FeatureContext) -> Tuple[int, int, Tuple[int, ...]]:
        """Decide one candidate; returns (decision code, sum, indices).

        The integer-code twin of :meth:`infer` — PPF's per-candidate
        loop calls this to skip the enum wrapping; ``DECISION_BY_CODE``
        maps the code back when the enum is wanted.
        """
        fused = self._fused_indices
        if fused is not None:
            indices = fused(ctx)
        else:
            indices = tuple(extract(ctx) & mask for extract, mask in self._lanes)
        total = 0
        for weights, index in zip(self._weight_lists, indices):
            total += weights[index]
        cfg = self.config
        stats = self.stats
        stats.inferences += 1
        if total >= cfg.tau_hi:
            stats.accepted_l2 += 1
            return PREFETCH_L2_CODE, total, indices
        if total >= cfg.tau_lo:
            stats.accepted_llc += 1
            return PREFETCH_LLC_CODE, total, indices
        stats.rejected += 1
        return REJECT_CODE, total, indices

    def infer(self, ctx: FeatureContext) -> Tuple[Decision, int, Tuple[int, ...]]:
        """Decide one candidate; returns (decision, sum, indices)."""
        code, total, indices = self.decide(ctx)
        return DECISION_BY_CODE[code], total, indices

    # -- batched inference ---------------------------------------------------------

    def batch_weight_sums(self, index_matrix):
        """Vectorized perceptron sums for a ``(features, n)`` index matrix.

        Gathers one weight per feature row and sums down the feature
        axis with numpy; returns an ``(n,)`` int64 array.  Inference
        only — no stats, no training — because batched scoring is only
        event-order safe when nothing trains between the candidates
        (benches, offline analysis, ``train_on_displacement=False``
        studies).  Inside the simulator the scalar :meth:`decide` stays
        authoritative.
        """
        import numpy as np

        totals = np.zeros(np.asarray(index_matrix[0]).shape, dtype=np.int64)
        for weights, indices in zip(self._weight_lists, index_matrix):
            totals += np.asarray(weights, dtype=np.int64)[np.asarray(indices)]
        return totals

    def decide_batch(self, index_matrix):
        """Vectorized decision codes + sums for an index matrix.

        Returns ``(codes, totals)`` numpy arrays using the same
        ``REJECT_CODE``/``PREFETCH_LLC_CODE``/``PREFETCH_L2_CODE``
        thresholds as :meth:`decide`.  Same stats/training caveat as
        :meth:`batch_weight_sums`.
        """
        import numpy as np

        totals = self.batch_weight_sums(index_matrix)
        cfg = self.config
        codes = np.where(
            totals >= cfg.tau_hi,
            PREFETCH_L2_CODE,
            np.where(totals >= cfg.tau_lo, PREFETCH_LLC_CODE, REJECT_CODE),
        )
        return codes, totals

    # -- engine seam ---------------------------------------------------------------

    def engine_view(self):
        """Raw mutable state for the batched engine's fused kernel.

        Returns ``(config, weight_lists, feature_names, stats, fused)``.
        ``weight_lists`` are direct references into the tables (restored
        in place by checkpoints, so never stale); ``fused`` is True only
        when the feature set is exactly the production catalog, which is
        what the fused kernel's inlined nine-index expression assumes.
        """
        return (
            self.config,
            self._weight_lists,
            self._feature_names,
            self.stats,
            self._fused_indices is not None,
        )

    # -- training ----------------------------------------------------------------

    def train(self, indices: Sequence[int], positive: bool) -> bool:
        """Apply one perceptron update; returns False when suppressed.

        The saturation guards re-read the *current* sum (the weights may
        have moved since inference), matching §3.1: "If the sum falls
        below a specific threshold, training occurs".
        """
        weight_lists = self._weight_lists
        total = 0
        for weights, index in zip(weight_lists, indices):
            total += weights[index]
        cfg = self.config
        stats = self.stats
        if positive:
            if total >= cfg.theta_p:
                stats.suppressed_updates += 1
                return False
        elif total <= cfg.theta_n:
            stats.suppressed_updates += 1
            return False
        updates = stats.per_feature_updates
        if positive:
            for name, weights, index in zip(self._feature_names, weight_lists, indices):
                value = weights[index]
                if value < WEIGHT_MAX:
                    weights[index] = value + 1
                    updates[name] = updates.get(name, 0) + 1
            stats.positive_updates += 1
        else:
            for name, weights, index in zip(self._feature_names, weight_lists, indices):
                value = weights[index]
                if value > WEIGHT_MIN:
                    weights[index] = value - 1
                    updates[name] = updates.get(name, 0) + 1
            stats.negative_updates += 1
        return True

    def retune(
        self, tau_hi: Optional[int] = None, tau_lo: Optional[int] = None
    ) -> None:
        """Adjust the inference thresholds in place.

        The hook for adaptive outer stages (the two-level filter moves
        its thresholds to chase a target accept accuracy).  Training
        thresholds are deliberately not retunable — only the
        accept/reject operating point moves.  A replacement
        :class:`FilterConfig` is constructed so its invariants
        (``tau_lo <= tau_hi``) keep holding.
        """
        cfg = self.config
        self.config = FilterConfig(
            tau_hi=cfg.tau_hi if tau_hi is None else tau_hi,
            tau_lo=cfg.tau_lo if tau_lo is None else tau_lo,
            theta_p=cfg.theta_p,
            theta_n=cfg.theta_n,
        )

    # -- introspection ------------------------------------------------------------

    @property
    def max_sum(self) -> int:
        """Largest sum the current feature count can produce."""
        from .weights import WEIGHT_MAX

        return WEIGHT_MAX * len(self.features)

    @property
    def min_sum(self) -> int:
        from .weights import WEIGHT_MIN

        return WEIGHT_MIN * len(self.features)

    def weight_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-feature weight-health metrics for telemetry probes.

        ``abs_mean`` tracks how far a table has trained away from zero;
        ``saturation`` is the fraction of entries pinned at either rail
        (WEIGHT_MIN/WEIGHT_MAX), the early-warning sign that a feature
        has run out of dynamic range.  Pure read: safe to sample mid-run.
        """
        summary: Dict[str, Dict[str, float]] = {}
        for name, weights in zip(self._feature_names, self._weight_lists):
            entries = len(weights)
            magnitude = 0
            saturated = 0
            for value in weights:
                magnitude += value if value >= 0 else -value
                if value <= WEIGHT_MIN or value >= WEIGHT_MAX:
                    saturated += 1
            summary[name] = {
                "abs_mean": magnitude / entries,
                "saturation": saturated / entries,
            }
        return summary

    def table_for(self, feature_name: str) -> WeightTable:
        for feature, table in zip(self.features, self.tables):
            if feature.name == feature_name:
                return table
        raise KeyError(f"no feature named {feature_name!r}")

    def total_weight_bits(self) -> int:
        return sum(table.storage_bits for table in self.tables)

    def reset(self) -> None:
        for table in self.tables:
            table.reset()
        self.stats.reset()

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "tables": [table.state_dict() for table in self.tables],
            "stats": group_state(self.stats),
        }

    def load_state(self, state: dict) -> None:
        tables = state["tables"]
        if len(tables) != len(self.tables):
            raise ValueError(
                f"snapshot has {len(tables)} weight tables, filter has {len(self.tables)}"
            )
        # Each table restores in place, so ``_weight_lists`` (direct
        # references into the tables) stays valid.
        for table, table_state in zip(self.tables, tables):
            table.load_state(table_state)
        load_group(self.stats, state["stats"])
