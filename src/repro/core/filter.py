"""The perceptron filter: hashed-perceptron inference and training (§3.1).

Inference sums one 5-bit weight per feature table and thresholds the sum
twice:

* ``sum >= tau_hi``            → prefetch into the **L2** (high confidence)
* ``tau_lo <= sum < tau_hi``   → prefetch into the **LLC** (moderate)
* ``sum < tau_lo``             → **reject** the candidate

Training follows the perceptron learning rule with saturation guards:
on a positive outcome weights are incremented only while the re-computed
sum is below ``theta_p``; on a negative outcome they are decremented
only while the sum is above ``theta_n``.  The guards prevent
over-training so the filter re-adapts quickly when program behaviour
shifts (§3.1, "Training").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..stats import StatGroup
from .features import Feature, FeatureContext, production_features
from .weights import WeightTable


class Decision(Enum):
    """Where an accepted candidate fills, or that it was rejected."""

    PREFETCH_L2 = "l2"
    PREFETCH_LLC = "llc"
    REJECT = "reject"

    @property
    def accepted(self) -> bool:
        return self is not Decision.REJECT


@dataclass
class FilterConfig:
    """Inference and training thresholds.

    Defaults follow the reference PPF implementation: the inference
    thresholds sit slightly below zero so an untrained filter lets
    prefetches through (SPP only suggests candidates it has *some*
    confidence in), and the training thresholds stop weight movement
    once the sum is decisively correct.
    """

    tau_hi: int = -5
    tau_lo: int = -15
    theta_p: int = 90
    theta_n: int = -90

    def __post_init__(self) -> None:
        if self.tau_lo > self.tau_hi:
            raise ValueError("tau_lo must not exceed tau_hi")
        if self.theta_n > self.theta_p:
            raise ValueError("theta_n must not exceed theta_p")

    @classmethod
    def default(cls) -> "FilterConfig":
        return cls()

    @classmethod
    def single_level(cls) -> "FilterConfig":
        """Ablation: collapse the two fill thresholds into one."""
        return cls(tau_hi=-15, tau_lo=-15)


@dataclass
class FilterStats(StatGroup):
    """Inference/training counters, including a per-feature histogram."""

    derived = ("accept_rate",)

    inferences: int = 0
    accepted_l2: int = 0
    accepted_llc: int = 0
    rejected: int = 0
    positive_updates: int = 0
    negative_updates: int = 0
    suppressed_updates: int = 0  # skipped by the theta saturation guards
    #: Weight movements per feature table (saturated bumps don't count),
    #: flattened into snapshots as ``per_feature_updates.<feature>``.
    per_feature_updates: Dict[str, int] = field(default_factory=dict)

    @property
    def accept_rate(self) -> float:
        if self.inferences == 0:
            return 0.0
        return (self.accepted_l2 + self.accepted_llc) / self.inferences


class PerceptronFilter:
    """Hashed-perceptron usefulness predictor over a feature set."""

    def __init__(
        self,
        features: Optional[Sequence[Feature]] = None,
        config: Optional[FilterConfig] = None,
    ) -> None:
        self.features: List[Feature] = (
            list(features) if features is not None else production_features()
        )
        if not self.features:
            raise ValueError("perceptron filter needs at least one feature")
        self.config = config or FilterConfig.default()
        self.tables: List[WeightTable] = [
            WeightTable(feature.table_entries) for feature in self.features
        ]
        self.stats = FilterStats()

    # -- inference ---------------------------------------------------------------

    def feature_indices(self, ctx: FeatureContext) -> Tuple[int, ...]:
        """Compute each feature's table index for one candidate."""
        return tuple(feature.index(ctx) for feature in self.features)

    def weight_sum(self, indices: Sequence[int]) -> int:
        """The perceptron sum for previously computed indices."""
        return sum(table.read(index) for table, index in zip(self.tables, indices))

    def infer(self, ctx: FeatureContext) -> Tuple[Decision, int, Tuple[int, ...]]:
        """Decide one candidate; returns (decision, sum, indices)."""
        indices = self.feature_indices(ctx)
        total = self.weight_sum(indices)
        cfg = self.config
        self.stats.inferences += 1
        if total >= cfg.tau_hi:
            self.stats.accepted_l2 += 1
            return Decision.PREFETCH_L2, total, indices
        if total >= cfg.tau_lo:
            self.stats.accepted_llc += 1
            return Decision.PREFETCH_LLC, total, indices
        self.stats.rejected += 1
        return Decision.REJECT, total, indices

    # -- training ----------------------------------------------------------------

    def train(self, indices: Sequence[int], positive: bool) -> bool:
        """Apply one perceptron update; returns False when suppressed.

        The saturation guards re-read the *current* sum (the weights may
        have moved since inference), matching §3.1: "If the sum falls
        below a specific threshold, training occurs".
        """
        total = self.weight_sum(indices)
        cfg = self.config
        if positive and total >= cfg.theta_p:
            self.stats.suppressed_updates += 1
            return False
        if not positive and total <= cfg.theta_n:
            self.stats.suppressed_updates += 1
            return False
        updates = self.stats.per_feature_updates
        for feature, table, index in zip(self.features, self.tables, indices):
            before = table.read(index)
            if table.bump(index, positive) != before:
                updates[feature.name] = updates.get(feature.name, 0) + 1
        if positive:
            self.stats.positive_updates += 1
        else:
            self.stats.negative_updates += 1
        return True

    # -- introspection ------------------------------------------------------------

    @property
    def max_sum(self) -> int:
        """Largest sum the current feature count can produce."""
        from .weights import WEIGHT_MAX

        return WEIGHT_MAX * len(self.features)

    @property
    def min_sum(self) -> int:
        from .weights import WEIGHT_MIN

        return WEIGHT_MIN * len(self.features)

    def table_for(self, feature_name: str) -> WeightTable:
        for feature, table in zip(self.features, self.tables):
            if feature.name == feature_name:
                return table
        raise KeyError(f"no feature named {feature_name!r}")

    def total_weight_bits(self) -> int:
        return sum(table.storage_bits for table in self.tables)

    def reset(self) -> None:
        for table in self.tables:
            table.reset()
        self.stats.reset()
