"""PPF core: the paper's contribution (hashed-perceptron prefetch filter)."""

from .features import (
    Feature,
    FeatureContext,
    exploration_features,
    feature_by_name,
    feature_names,
    production_features,
    scaled_production_features,
)
from .filter import Decision, FilterConfig, FilterStats, PerceptronFilter
from .ppf import PPF, make_ppf_spp
from .tables import (
    INDEX_BITS,
    TABLE_ENTRIES,
    TAG_BITS,
    DecisionTable,
    PrefetchTable,
    RejectTable,
    TableEntry,
    split_address,
)
from .weights import (
    WEIGHT_BITS,
    WEIGHT_MAX,
    WEIGHT_MIN,
    SaturatingCounter,
    WeightTable,
    clamp_weight,
)

__all__ = [
    "Feature",
    "FeatureContext",
    "exploration_features",
    "feature_by_name",
    "feature_names",
    "production_features",
    "scaled_production_features",
    "Decision",
    "FilterConfig",
    "FilterStats",
    "PerceptronFilter",
    "PPF",
    "make_ppf_spp",
    "INDEX_BITS",
    "TABLE_ENTRIES",
    "TAG_BITS",
    "DecisionTable",
    "PrefetchTable",
    "RejectTable",
    "TableEntry",
    "split_address",
    "WEIGHT_BITS",
    "WEIGHT_MAX",
    "WEIGHT_MIN",
    "SaturatingCounter",
    "WeightTable",
    "clamp_weight",
]
