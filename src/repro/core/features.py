"""PPF's perceptron features (§4.2) and the wider exploration catalog (§5.5).

A feature maps the metadata of one prefetch candidate to an index into
its own weight table.  The production configuration uses the paper's
nine features with the Table 3 size split (four 4096-entry tables, two
2048, two 1024, one 128).  The paper reports starting from 23 candidate
features and trimming them with a Pearson-correlation methodology; the
full catalog is kept here so :mod:`repro.analysis.feature_selection` can
re-run that study, including the rejected "Last Signature" feature shown
in Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..memory.address import encode_delta
from ..registry import register


@dataclass(frozen=True)
class FeatureContext:
    """Everything a feature may look at for one prefetch candidate.

    ``trigger_addr``/``pc`` describe the L2 demand access that triggered
    the prefetch chain; ``candidate_addr`` is the block being considered;
    ``pcs`` holds the last three demand PCs (most recent first); the rest
    is SPP metadata exported to PPF (§4.1).
    """

    candidate_addr: int
    trigger_addr: int
    pc: int
    pcs: Tuple[int, int, int]
    delta: int
    depth: int
    signature: int
    last_signature: int
    confidence: int


#: Extractors return an un-masked hash; the weight table masks it.
FeatureFn = Callable[[FeatureContext], int]


@dataclass(frozen=True)
class Feature:
    """A named feature with its weight-table size."""

    name: str
    table_entries: int
    extract: FeatureFn

    def index(self, ctx: FeatureContext) -> int:
        return self.extract(ctx) & (self.table_entries - 1)


# -- primitive extractors ------------------------------------------------------


def _phys_address(ctx: FeatureContext) -> int:
    """Lower bits of the candidate's physical address (block-aligned)."""
    return ctx.candidate_addr >> 6


def _cache_line(ctx: FeatureContext) -> int:
    """The candidate address shifted by the block size — a second view of
    the same address with different bit alignment (§4.2)."""
    return ctx.candidate_addr >> 12


def _page_address(ctx: FeatureContext) -> int:
    """The candidate address shifted by the page size."""
    return ctx.candidate_addr >> 18


def _pc_xor_depth(ctx: FeatureContext) -> int:
    return ctx.pc ^ ctx.depth


def _pc_path_hash(ctx: FeatureContext) -> int:
    """PC1 XOR (PC2 >> 1) XOR (PC3 >> 2): the branch-path hash."""
    pc1, pc2, pc3 = ctx.pcs
    return pc1 ^ (pc2 >> 1) ^ (pc3 >> 2)


def _pc_xor_delta(ctx: FeatureContext) -> int:
    return ctx.pc ^ encode_delta(ctx.delta)


def _confidence(ctx: FeatureContext) -> int:
    return ctx.confidence


def _page_xor_confidence(ctx: FeatureContext) -> int:
    return (ctx.trigger_addr >> 12) ^ ctx.confidence


def _signature_xor_delta(ctx: FeatureContext) -> int:
    return ctx.signature ^ encode_delta(ctx.delta)


# -- rejected / exploratory extractors (for the §5.5 study) ---------------------


def _last_signature(ctx: FeatureContext) -> int:
    return ctx.last_signature


def _pc_alone(ctx: FeatureContext) -> int:
    return ctx.pc


def _depth_alone(ctx: FeatureContext) -> int:
    return ctx.depth


def _delta_alone(ctx: FeatureContext) -> int:
    return encode_delta(ctx.delta)


def _confidence_xor_depth(ctx: FeatureContext) -> int:
    return ctx.confidence ^ ctx.depth


def _page_offset(ctx: FeatureContext) -> int:
    return (ctx.candidate_addr >> 6) & 0x3F


def _pc_xor_page(ctx: FeatureContext) -> int:
    return ctx.pc ^ (ctx.trigger_addr >> 12)


def _address_fold(ctx: FeatureContext) -> int:
    block = ctx.candidate_addr >> 6
    return block ^ (block >> 12)


def _signature_alone(ctx: FeatureContext) -> int:
    return ctx.signature


def _signature_xor_depth(ctx: FeatureContext) -> int:
    return ctx.signature ^ ctx.depth


def _delta_xor_depth(ctx: FeatureContext) -> int:
    return encode_delta(ctx.delta) ^ (ctx.depth << 7)


def _pc2_xor_delta(ctx: FeatureContext) -> int:
    return ctx.pcs[1] ^ encode_delta(ctx.delta)


def _trigger_offset_xor_delta(ctx: FeatureContext) -> int:
    return ((ctx.trigger_addr >> 6) & 0x3F) ^ (encode_delta(ctx.delta) << 6)


def _page_xor_depth(ctx: FeatureContext) -> int:
    return (ctx.trigger_addr >> 12) ^ ctx.depth


# -- catalogs --------------------------------------------------------------------


@register("features", "production")
def production_features() -> List[Feature]:
    """The paper's nine features with the Table 3 entry split.

    Higher-correlation address features get full 12-bit indexing; the
    low-P-value PC⊕depth and PC⊕delta features get 10-bit tables; the
    confidence feature only needs 128 entries for its 0–100 range.
    """
    return [
        Feature("phys_address", 4096, _phys_address),
        Feature("cache_line", 4096, _cache_line),
        Feature("page_address", 4096, _page_address),
        Feature("page_xor_confidence", 4096, _page_xor_confidence),
        Feature("pc_path_hash", 2048, _pc_path_hash),
        Feature("signature_xor_delta", 2048, _signature_xor_delta),
        Feature("pc_xor_depth", 1024, _pc_xor_depth),
        Feature("pc_xor_delta", 1024, _pc_xor_delta),
        Feature("confidence", 128, _confidence),
    ]


@register("features", "exploration")
def exploration_features() -> List[Feature]:
    """The wider 23-feature catalog PPF's selection study started from."""
    extras = [
        Feature("last_signature", 4096, _last_signature),
        Feature("pc", 4096, _pc_alone),
        Feature("depth", 128, _depth_alone),
        Feature("delta", 128, _delta_alone),
        Feature("confidence_xor_depth", 128, _confidence_xor_depth),
        Feature("page_offset", 64, _page_offset),
        Feature("pc_xor_page", 4096, _pc_xor_page),
        Feature("address_fold", 4096, _address_fold),
        Feature("signature", 4096, _signature_alone),
        Feature("signature_xor_depth", 4096, _signature_xor_depth),
        Feature("delta_xor_depth", 2048, _delta_xor_depth),
        Feature("pc2_xor_delta", 2048, _pc2_xor_delta),
        Feature("offset_xor_delta", 4096, _trigger_offset_xor_delta),
        Feature("page_xor_depth", 4096, _page_xor_depth),
    ]
    return production_features() + extras


@register("features", "scaled")
def scaled_production_features(budget_factor: float) -> List[Feature]:
    """The nine features with weight tables scaled to a hardware budget.

    §5.6: "The newly added perceptron tables can be scaled to increase /
    decrease features depending on the permitted budget."  A factor of
    0.5 halves every table (≈56,640 weight bits), 2.0 doubles them.
    Sizes snap to the nearest power of two and never drop below 64
    entries (the confidence feature still needs its 0–100 range to fit
    after masking).
    """
    if budget_factor <= 0:
        raise ValueError("budget factor must be positive")
    scaled = []
    for feature in production_features():
        target = max(64, int(feature.table_entries * budget_factor))
        entries = 1 << (target.bit_length() - 1)
        if entries * 2 - target < target - entries:
            entries *= 2
        scaled.append(Feature(feature.name, entries, feature.extract))
    return scaled


def production_index_batch(
    candidate_addrs,
    trigger_addrs,
    pc,
    pcs1,
    pcs2,
    pcs3,
    deltas,
    depths,
    signatures,
    confidences,
):
    """Vectorized twin of the fused production-feature indexer.

    Every argument is an array-like (scalars broadcast); the return value
    is a ``(9, n)`` int64 matrix whose rows are the production features
    in catalog order — index-for-index identical with
    :meth:`repro.core.filter.PerceptronFilter.feature_indices` on the
    production catalog (``tests/test_engine_equivalence.py`` cross-checks
    the two).  This is the batched engine's feature-hash primitive for
    scoring candidate batches outside the event loop (benches, offline
    analysis); the in-loop kernel stays scalar because training can move
    weights between two candidates of the same trigger.
    """
    import numpy as np

    cand = np.asarray(candidate_addrs, dtype=np.int64)
    trig = np.broadcast_to(np.asarray(trigger_addrs, dtype=np.int64), cand.shape)
    pcv = np.broadcast_to(np.asarray(pc, dtype=np.int64), cand.shape)
    p1 = np.broadcast_to(np.asarray(pcs1, dtype=np.int64), cand.shape)
    p2 = np.broadcast_to(np.asarray(pcs2, dtype=np.int64), cand.shape)
    p3 = np.broadcast_to(np.asarray(pcs3, dtype=np.int64), cand.shape)
    delta = np.asarray(deltas, dtype=np.int64)
    depth = np.broadcast_to(np.asarray(depths, dtype=np.int64), cand.shape)
    sig = np.broadcast_to(np.asarray(signatures, dtype=np.int64), cand.shape)
    conf = np.broadcast_to(np.asarray(confidences, dtype=np.int64), cand.shape)
    magnitude = np.minimum(np.abs(delta), 63)
    encoded = np.where(delta < 0, magnitude | 64, magnitude)
    encoded = np.broadcast_to(encoded, cand.shape)
    return np.stack(
        [
            (cand >> 6) & 4095,  # phys_address
            (cand >> 12) & 4095,  # cache_line
            (cand >> 18) & 4095,  # page_address
            ((trig >> 12) ^ conf) & 4095,  # page_xor_confidence
            (p1 ^ (p2 >> 1) ^ (p3 >> 2)) & 2047,  # pc_path_hash
            (sig ^ encoded) & 2047,  # signature_xor_delta
            (pcv ^ depth) & 1023,  # pc_xor_depth
            (pcv ^ encoded) & 1023,  # pc_xor_delta
            conf & 127,  # confidence
        ]
    )


def feature_by_name(name: str, catalog: Sequence[Feature] | None = None) -> Feature:
    """Look a feature up by name in a catalog (production by default)."""
    for feature in catalog if catalog is not None else exploration_features():
        if feature.name == name:
            return feature
    raise KeyError(f"no feature named {name!r}")


def feature_names(catalog: Sequence[Feature]) -> List[str]:
    return [feature.name for feature in catalog]
