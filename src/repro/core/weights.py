"""Saturating weights and per-feature weight tables for the perceptron.

Each PPF weight is a 5-bit saturating counter in [-16, +15] (§3.1: "we
found that having 5-bit weights provides a good trade-off between
accuracy and area").  A :class:`WeightTable` is one feature's bank of
weights; the hashed-perceptron sum reads one weight per table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

WEIGHT_BITS = 5
WEIGHT_MIN = -(1 << (WEIGHT_BITS - 1))  # -16
WEIGHT_MAX = (1 << (WEIGHT_BITS - 1)) - 1  # +15


def clamp_weight(value: int) -> int:
    """Saturate ``value`` into the 5-bit weight range."""
    if value < WEIGHT_MIN:
        return WEIGHT_MIN
    if value > WEIGHT_MAX:
        return WEIGHT_MAX
    return value


@dataclass
class SaturatingCounter:
    """A standalone saturating counter (used by tests and diagnostics)."""

    value: int = 0
    minimum: int = WEIGHT_MIN
    maximum: int = WEIGHT_MAX

    def __post_init__(self) -> None:
        if self.minimum > self.maximum:
            raise ValueError("counter minimum exceeds maximum")
        self.value = max(self.minimum, min(self.maximum, self.value))

    def increment(self) -> int:
        if self.value < self.maximum:
            self.value += 1
        return self.value

    def decrement(self) -> int:
        if self.value > self.minimum:
            self.value -= 1
        return self.value


class WeightTable:
    """One feature's bank of 5-bit saturating weights.

    ``entries`` must be a power of two so feature hashes can be masked
    rather than reduced modulo (matching the hardware indexing).
    """

    def __init__(self, entries: int) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"weight table entries must be a power of two, got {entries}")
        self.entries = entries
        self.mask = entries - 1
        self._weights: List[int] = [0] * entries

    def index_of(self, hashed: int) -> int:
        """Reduce a feature hash to a table index."""
        return hashed & self.mask

    def read(self, index: int) -> int:
        return self._weights[index]

    def bump(self, index: int, positive: bool) -> int:
        """Apply one perceptron update step (+1 or -1, saturating)."""
        value = self._weights[index]
        value = value + 1 if positive else value - 1
        value = clamp_weight(value)
        self._weights[index] = value
        return value

    def weights(self) -> List[int]:
        """A copy of all weights (for the analysis module)."""
        return list(self._weights)

    def nonzero_count(self) -> int:
        return sum(1 for w in self._weights if w != 0)

    def reset(self) -> None:
        # In place: PerceptronFilter caches direct references to the
        # weight lists, so the list object must survive a reset.
        self._weights[:] = [0] * self.entries

    def load(self, values: Iterable[int]) -> None:
        """Overwrite the table (tests / analysis replay); values clamped."""
        values = [clamp_weight(v) for v in values]
        if len(values) != self.entries:
            raise ValueError(f"expected {self.entries} weights, got {len(values)}")
        self._weights[:] = values

    @property
    def storage_bits(self) -> int:
        return self.entries * WEIGHT_BITS

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        return {"weights": list(self._weights)}

    def load_state(self, state: dict) -> None:
        # load() validates the length and mutates in place, preserving
        # the list object PerceptronFilter's hot path holds.
        self.load(int(weight) for weight in state["weights"])
