"""PPF's Prefetch Table and Reject Table (§3.1, Tables 2–3).

Both are 1,024-entry direct-mapped structures indexed by ten bits of the
prefetch block address with a six-bit tag.  The Prefetch Table records
candidates the perceptron *accepted* (so that later demand hits train
positively and unused evictions train negatively); the Reject Table
records candidates it *rejected* (so that a later demand access to a
rejected block — a false negative — can train positively).  Each entry
keeps the feature indices needed to re-address the weight tables at
training time, which is the "metadata required for perceptron training"
of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

INDEX_BITS = 10
TAG_BITS = 6
TABLE_ENTRIES = 1 << INDEX_BITS


@dataclass
class TableEntry:
    """One recorded prefetch decision."""

    __slots__ = ("valid", "tag", "useful", "perc_decision", "feature_indices", "perc_sum")

    valid: bool
    tag: int
    useful: bool
    perc_decision: bool
    feature_indices: Tuple[int, ...]
    perc_sum: int


def split_address(addr: int) -> Tuple[int, int]:
    """Map a byte address to (table index, tag) at block granularity."""
    block = addr >> 6
    index = block & (TABLE_ENTRIES - 1)
    tag = (block >> INDEX_BITS) & ((1 << TAG_BITS) - 1)
    return index, tag


class DecisionTable:
    """Direct-mapped decision-history table (base for both tables)."""

    def __init__(self, entries: int = TABLE_ENTRIES) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"table entries must be a power of two, got {entries}")
        self.entries = entries
        self._index_mask = entries - 1
        self._slots: List[Optional[TableEntry]] = [None] * entries
        self.inserts = 0
        self.hits = 0
        self.conflicts = 0

    def _locate(self, addr: int) -> Tuple[int, int]:
        block = addr >> 6
        index = block & self._index_mask
        tag = (block >> INDEX_BITS) & ((1 << TAG_BITS) - 1)
        return index, tag

    def insert(
        self,
        addr: int,
        feature_indices: Tuple[int, ...],
        perc_decision: bool,
        perc_sum: int,
    ) -> Optional[TableEntry]:
        """Record a decision; returns any valid entry this displaces.

        The displaced entry never received feedback — the caller may
        treat an accepted-but-never-demanded displacement as a useless
        prefetch (see :class:`repro.core.ppf.PPF`).  Re-recording the
        same block (same index *and* tag — e.g. the lookahead suggesting
        a block it already suggested) is a refresh, not a displacement,
        and returns ``None``.
        """
        block = addr >> 6
        index = block & self._index_mask
        tag = (block >> INDEX_BITS) & 63
        slots = self._slots
        displaced = slots[index]
        if displaced is not None and displaced.valid:
            if displaced.tag == tag:
                displaced = None  # same block: refresh in place
            else:
                self.conflicts += 1
        else:
            displaced = None
        slots[index] = TableEntry(True, tag, False, perc_decision, feature_indices, perc_sum)
        self.inserts += 1
        return displaced

    def lookup(self, addr: int) -> Optional[TableEntry]:
        """Return the valid, tag-matching entry for ``addr`` (or None)."""
        block = addr >> 6
        entry = self._slots[block & self._index_mask]
        if entry is not None and entry.valid and entry.tag == (block >> INDEX_BITS) & 63:
            self.hits += 1
            return entry
        return None

    def invalidate(self, addr: int) -> bool:
        """Drop the entry for ``addr`` after its feedback is consumed."""
        block = addr >> 6
        entry = self._slots[block & self._index_mask]
        if entry is not None and entry.valid and entry.tag == (block >> INDEX_BITS) & 63:
            entry.valid = False
            return True
        return False

    def occupancy(self) -> int:
        return sum(1 for entry in self._slots if entry is not None and entry.valid)

    def reset(self) -> None:
        self._slots = [None] * self.entries
        self.reset_counters()

    def reset_counters(self) -> None:
        """Zero the event counters while keeping the recorded entries."""
        self.inserts = 0
        self.hits = 0
        self.conflicts = 0

    # -- engine seam ---------------------------------------------------------

    def engine_view(self):
        """Raw mutable state for the batched engine's fused kernel.

        Returns ``(slots, index_mask)``.  ``slots`` is mutated in place
        with the same :class:`TableEntry` layout the scalar methods use;
        the ``inserts``/``hits``/``conflicts`` counters are part of the
        seam contract (read at chunk start, written back at chunk end).
        Note the tag is always ``(block >> INDEX_BITS) & 63`` regardless
        of ``entries`` — :meth:`_locate` fixes INDEX_BITS at 10.
        """
        return self._slots, self._index_mask

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        # Only live entries serialize: an invalidated slot behaves
        # exactly like an empty one on every code path.
        return {
            "entries": [
                [index, [entry.tag, entry.useful, entry.perc_decision,
                         list(entry.feature_indices), entry.perc_sum]]
                for index, entry in enumerate(self._slots)
                if entry is not None and entry.valid
            ],
            "inserts": self.inserts,
            "hits": self.hits,
            "conflicts": self.conflicts,
        }

    def load_state(self, state: dict) -> None:
        slots: List[Optional[TableEntry]] = [None] * self.entries
        for index, (tag, useful, perc_decision, feature_indices, perc_sum) in state["entries"]:
            slots[int(index)] = TableEntry(
                True,
                int(tag),
                bool(useful),
                bool(perc_decision),
                tuple(int(i) for i in feature_indices),
                int(perc_sum),
            )
        self._slots = slots
        self.inserts = int(state["inserts"])
        self.hits = int(state["hits"])
        self.conflicts = int(state["conflicts"])


class PrefetchTable(DecisionTable):
    """Accepted prefetches awaiting ground truth (demand hit or evict)."""


class RejectTable(DecisionTable):
    """Rejected candidates; a later demand access means a false negative.

    The Reject Table omits the "useful" bit (Table 3, footnote 2) — an
    entry here was never prefetched, so the only feedback it can receive
    is a demand access proving the rejection wrong.
    """
