"""Hierarchical statistics engine shared by every simulated component.

Components keep their counters in small :class:`StatGroup` dataclasses
(plain attribute increments — the hot paths stay cheap), and mount them
into a :class:`StatsNode` tree that scopes them by core and by level:

    hierarchy
    ├── core0
    │   ├── l1      (CacheStats)
    │   ├── l2      (CacheStats)
    │   ├── cpu     (CoreStats)
    │   └── prefetcher          (PrefetcherStats, + PPF's filter/tables)
    ├── llc         (CacheStats)
    └── dram        (DRAMStats)

``snapshot()`` flattens the tree into a ``{"core0.l2.demand_misses": n}``
mapping — the single artifact :class:`repro.sim.single_core.RunResult`
is a typed view over — and ``reset()`` zeroes every counter in one call
(the warmup/measurement boundary).  Adding a new metric anywhere in the
stack is one field on a group (or one ``derived`` property name): it
shows up in every snapshot, every cached result and every sweep without
plumbing through the drivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple, Union

Number = Union[int, float]
SnapshotDict = Dict[str, Number]


class StatGroup:
    """Mixin for dataclass counter groups.

    Subclasses are ``@dataclass``es whose int/float fields are counters
    and whose dict fields are histograms (string key -> count).  The
    class attribute ``derived`` names properties to include in
    snapshots (rates, means) without making them resettable state.
    """

    derived: Tuple[str, ...] = ()

    def reset(self) -> None:
        for name, f in self.__dataclass_fields__.items():  # type: ignore[attr-defined]
            value = getattr(self, name)
            if isinstance(value, dict):
                value.clear()
            elif isinstance(value, (int, float)):
                setattr(self, name, 0)

    def snapshot(self) -> SnapshotDict:
        out: SnapshotDict = {}
        for name in self.__dataclass_fields__:  # type: ignore[attr-defined]
            value = getattr(self, name)
            if isinstance(value, dict):
                for key, count in value.items():
                    out[f"{name}.{key}"] = count
            elif isinstance(value, (int, float)):
                out[name] = value
        for name in self.derived:
            out[name] = getattr(self, name)
        return out


@dataclass
class Accumulator(StatGroup):
    """Streaming count/total/max aggregate with a derived mean.

    For sample streams whose individual values matter less than their
    volume and extremes (cell wall times, queue depths): ``add()``
    maintains the running count, total and max, and snapshots include
    the derived ``mean`` — so a mounted accumulator contributes
    ``<name>.count``, ``<name>.total``, ``<name>.max`` and
    ``<name>.mean`` to the flattened tree.
    """

    count: int = 0
    total: float = 0.0
    max: float = 0.0

    derived = ("mean",)

    def add(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count


@dataclass
class Histogram(StatGroup):
    """A string-keyed counter map usable standalone or inside a group."""

    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, key: str, amount: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + amount

    def total(self) -> int:
        return sum(self.counts.values())


class GroupAdapter:
    """Mount an arbitrary object with custom snapshot/reset callables.

    Used for structures whose full ``reset()`` would destroy *state*
    rather than statistics (e.g. PPF's decision tables keep their
    entries across the warmup boundary but zero their event counters).
    """

    def __init__(
        self,
        snapshot: Callable[[], SnapshotDict],
        reset: Optional[Callable[[], None]] = None,
    ) -> None:
        self._snapshot = snapshot
        self._reset = reset

    def snapshot(self) -> SnapshotDict:
        return self._snapshot()

    def reset(self) -> None:
        if self._reset is not None:
            self._reset()


class StatsNode:
    """One scope in the stats tree: child scopes plus mounted groups."""

    __slots__ = ("name", "_children", "_groups", "_scalars")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._children: Dict[str, StatsNode] = {}
        self._groups: Dict[str, object] = {}
        self._scalars: Dict[str, Number] = {}

    # -- structure -----------------------------------------------------------

    def child(self, name: str) -> "StatsNode":
        """Get or create the child scope ``name``."""
        node = self._children.get(name)
        if node is None:
            node = StatsNode(name)
            self._children[name] = node
        return node

    def attach(self, name: str, group) -> object:
        """Mount a group (anything with ``snapshot()``/``reset()``)."""
        self._groups[name] = group
        return group

    # -- ad-hoc scalars -------------------------------------------------------

    def counter(self, name: str, amount: Number = 1) -> None:
        """Bump a scalar counter owned directly by this node."""
        self._scalars[name] = self._scalars.get(name, 0) + amount

    def set(self, name: str, value: Number) -> None:
        """Record a gauge-style scalar (overwrites)."""
        self._scalars[name] = value

    # -- aggregation ----------------------------------------------------------

    def snapshot(self) -> SnapshotDict:
        """Flatten this subtree into dotted-path -> value."""
        out: SnapshotDict = dict(self._scalars)
        for name, group in self._groups.items():
            for key, value in group.snapshot().items():
                out[f"{name}.{key}"] = value
        for name, node in self._children.items():
            for key, value in node.snapshot().items():
                out[f"{name}.{key}"] = value
        return out

    def reset(self) -> None:
        """Zero every counter in this subtree (state is untouched)."""
        for name in self._scalars:
            self._scalars[name] = 0
        for group in self._groups.values():
            group.reset()
        for node in self._children.values():
            node.reset()

    def get(self, path: str, default: Number = 0) -> Number:
        """Read one dotted-path value from a fresh snapshot."""
        return self.snapshot().get(path, default)

    def children(self) -> Iterable[str]:
        return self._children.keys()

    def __repr__(self) -> str:
        return (
            f"StatsNode({self.name!r}, children={sorted(self._children)}, "
            f"groups={sorted(self._groups)})"
        )


def scoped(snapshot: SnapshotDict, prefix: str) -> SnapshotDict:
    """The sub-snapshot under ``prefix`` with the prefix stripped."""
    cut = len(prefix) + 1
    return {
        key[cut:]: value
        for key, value in snapshot.items()
        if key.startswith(prefix + ".")
    }
