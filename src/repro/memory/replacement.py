"""Pluggable replacement policies for the set-associative cache.

The paper evaluates every cache level with LRU, which is the default.
FIFO and random policies are provided for tests and ablations.  A policy
sees only per-set events (insert / touch / evict) and chooses a victim
among the tags currently resident in the set, so the cache model stays
independent of the policy implementation.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Any, Dict, Hashable, List

from ..checkpoint.state import decode_rng, encode_rng
from ..registry import create, names, register


class ReplacementPolicy(ABC):
    """Per-cache replacement state machine.

    One instance serves every set of one cache; implementations key their
    internal state by ``set_index``.
    """

    def state_dict(self) -> Dict[str, Any]:
        """Serializable snapshot of per-set replacement metadata.

        Victim choice is part of the bit-identical contract, so every
        policy that participates in checkpointing must override this
        pair; the base raises so an unported custom policy fails loudly
        instead of restoring half a cache.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement checkpointing"
        )

    def load_state(self, state: Dict[str, Any]) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} does not implement checkpointing"
        )

    @abstractmethod
    def on_insert(self, set_index: int, tag: Hashable) -> None:
        """Record that ``tag`` was filled into ``set_index``."""

    @abstractmethod
    def on_touch(self, set_index: int, tag: Hashable) -> None:
        """Record a hit on ``tag`` in ``set_index``."""

    @abstractmethod
    def on_evict(self, set_index: int, tag: Hashable) -> None:
        """Record that ``tag`` left ``set_index``."""

    @abstractmethod
    def victim(self, set_index: int) -> Hashable:
        """Choose the tag to evict from a full set."""


@register("replacement", "lru")
class LRUPolicy(ReplacementPolicy):
    """Least-recently-used, the paper's policy at every cache level."""

    def __init__(self) -> None:
        self._order: Dict[int, "OrderedDict[Hashable, None]"] = {}

    def _set(self, set_index: int) -> "OrderedDict[Hashable, None]":
        order = self._order.get(set_index)
        if order is None:
            order = OrderedDict()
            self._order[set_index] = order
        return order

    def on_insert(self, set_index: int, tag: Hashable) -> None:
        self._set(set_index)[tag] = None

    def on_touch(self, set_index: int, tag: Hashable) -> None:
        order = self._set(set_index)
        if tag in order:
            order.move_to_end(tag)
        else:  # touch before insert — treat as insert
            order[tag] = None

    def on_evict(self, set_index: int, tag: Hashable) -> None:
        self._set(set_index).pop(tag, None)

    def victim(self, set_index: int) -> Hashable:
        order = self._set(set_index)
        if not order:
            raise LookupError(f"victim() on empty set {set_index}")
        return next(iter(order))

    def recency_order(self, set_index: int) -> List[Hashable]:
        """Tags ordered LRU-first (exposed for tests)."""
        return list(self._set(set_index))

    def state_dict(self) -> Dict[str, Any]:
        # Pair lists keep both the int set indices and the LRU order,
        # neither of which survives a plain JSON object.
        return {"order": [[index, list(order)] for index, order in self._order.items()]}

    def load_state(self, state: Dict[str, Any]) -> None:
        self._order = {
            int(index): OrderedDict((int(tag), None) for tag in tags)
            for index, tags in state["order"]
        }


@register("replacement", "fifo")
class FIFOPolicy(ReplacementPolicy):
    """First-in first-out: hits do not refresh a line's position."""

    def __init__(self) -> None:
        self._order: Dict[int, "OrderedDict[Hashable, None]"] = {}

    def _set(self, set_index: int) -> "OrderedDict[Hashable, None]":
        order = self._order.get(set_index)
        if order is None:
            order = OrderedDict()
            self._order[set_index] = order
        return order

    def on_insert(self, set_index: int, tag: Hashable) -> None:
        self._set(set_index)[tag] = None

    def on_touch(self, set_index: int, tag: Hashable) -> None:
        order = self._set(set_index)
        if tag not in order:
            order[tag] = None

    def on_evict(self, set_index: int, tag: Hashable) -> None:
        self._set(set_index).pop(tag, None)

    def victim(self, set_index: int) -> Hashable:
        order = self._set(set_index)
        if not order:
            raise LookupError(f"victim() on empty set {set_index}")
        return next(iter(order))

    def state_dict(self) -> Dict[str, Any]:
        return {"order": [[index, list(order)] for index, order in self._order.items()]}

    def load_state(self, state: Dict[str, Any]) -> None:
        self._order = {
            int(index): OrderedDict((int(tag), None) for tag in tags)
            for index, tags in state["order"]
        }


@register("replacement", "random")
class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim selection with a seeded generator."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._tags: Dict[int, List[Hashable]] = {}

    def _set(self, set_index: int) -> List[Hashable]:
        tags = self._tags.get(set_index)
        if tags is None:
            tags = []
            self._tags[set_index] = tags
        return tags

    def on_insert(self, set_index: int, tag: Hashable) -> None:
        tags = self._set(set_index)
        if tag not in tags:
            tags.append(tag)

    def on_touch(self, set_index: int, tag: Hashable) -> None:
        self.on_insert(set_index, tag)

    def on_evict(self, set_index: int, tag: Hashable) -> None:
        tags = self._set(set_index)
        if tag in tags:
            tags.remove(tag)

    def victim(self, set_index: int) -> Hashable:
        tags = self._set(set_index)
        if not tags:
            raise LookupError(f"victim() on empty set {set_index}")
        return self._rng.choice(tags)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "rng": encode_rng(self._rng.getstate()),
            "tags": [[index, list(tags)] for index, tags in self._tags.items()],
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._rng.setstate(decode_rng(state["rng"]))
        self._tags = {
            int(index): [int(tag) for tag in tags] for index, tags in state["tags"]
        }


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a registered replacement policy by name.

    The registry lists the known names; seeded policies (``random``)
    receive ``seed``, the rest are constructed without arguments.
    """
    key = name.lower()
    if key not in names("replacement"):
        # UnknownComponentError (a ValueError) with the sorted catalog.
        return create("replacement", key)
    if key == "random":
        return create("replacement", key, seed)
    return create("replacement", key)
