"""Address arithmetic shared by the cache hierarchy and the prefetchers.

All simulated addresses are plain Python integers (physical byte
addresses).  The helpers here centralize the block/page decompositions
used throughout the paper:

* 64-byte cache blocks (``BLOCK_BITS = 6``),
* 4 KB pages (``PAGE_BITS = 12``), so a page holds 64 blocks,
* SPP block deltas encoded as 7-bit sign+magnitude values.
"""

from __future__ import annotations

BLOCK_BITS = 6
BLOCK_SIZE = 1 << BLOCK_BITS

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS

BLOCKS_PER_PAGE = PAGE_SIZE // BLOCK_SIZE

#: SPP stores deltas as 1 sign bit + 6 magnitude bits.
DELTA_MAGNITUDE_BITS = 6
MAX_DELTA_MAGNITUDE = (1 << DELTA_MAGNITUDE_BITS) - 1


def block_number(addr: int) -> int:
    """Return the cache-block number (address without the block offset)."""
    return addr >> BLOCK_BITS


def block_address(addr: int) -> int:
    """Return the address of the first byte of the block containing ``addr``."""
    return (addr >> BLOCK_BITS) << BLOCK_BITS


def page_number(addr: int) -> int:
    """Return the page number of ``addr``."""
    return addr >> PAGE_BITS


def page_address(addr: int) -> int:
    """Return the address of the first byte of the page containing ``addr``."""
    return (addr >> PAGE_BITS) << PAGE_BITS


def page_offset_block(addr: int) -> int:
    """Return the block offset within the page (0..63), as SPP tracks it."""
    return (addr >> BLOCK_BITS) & (BLOCKS_PER_PAGE - 1)


def same_page(a: int, b: int) -> bool:
    """True when the two byte addresses fall in the same 4 KB page."""
    return (a >> PAGE_BITS) == (b >> PAGE_BITS)


def block_in_page(page: int, offset: int) -> int:
    """Compose a byte address from a page number and a block offset.

    ``offset`` must be in ``[0, BLOCKS_PER_PAGE)``; it is the caller's
    job to check page-boundary crossings before calling this.
    """
    if not 0 <= offset < BLOCKS_PER_PAGE:
        raise ValueError(f"block offset {offset} outside page (0..{BLOCKS_PER_PAGE - 1})")
    return (page << PAGE_BITS) | (offset << BLOCK_BITS)


def encode_delta(delta: int) -> int:
    """Encode a signed block delta into SPP's 7-bit sign+magnitude form.

    The magnitude saturates at 63 (6 bits); the sign lives in bit 6.
    ``encode_delta(0)`` is 0 — SPP never stores zero deltas, but the
    encoding is total so that hash features behave on any input.
    """
    magnitude = min(abs(delta), MAX_DELTA_MAGNITUDE)
    sign = 1 if delta < 0 else 0
    return (sign << DELTA_MAGNITUDE_BITS) | magnitude


def decompose_batch(addrs):
    """Vectorized address decomposition for the batched engine.

    Takes a sequence of byte addresses and returns plain Python lists
    ``(blocks, pages, offsets)`` — block number, page number and
    block-in-page offset per address — computed with one numpy pass
    instead of per-record shifts.  Set indices are *not* produced here:
    they are cache-geometry masks of ``blocks`` and the engine computes
    them against each cache's own mask.

    Raises :class:`OverflowError` if an address does not fit ``int64``
    (callers fall back to scalar decomposition — correctness never
    depends on this helper).
    """
    import numpy as np

    arr = np.asarray(addrs, dtype=np.int64)
    blocks = arr >> BLOCK_BITS
    pages = arr >> PAGE_BITS
    offsets = blocks & (BLOCKS_PER_PAGE - 1)
    return blocks.tolist(), pages.tolist(), offsets.tolist()


def encode_delta_batch(deltas):
    """Vectorized :func:`encode_delta` over a sequence of deltas.

    Returns a numpy ``int64`` array using the same saturate-magnitude +
    sign-bit layout as the scalar function.
    """
    import numpy as np

    arr = np.asarray(deltas, dtype=np.int64)
    magnitude = np.minimum(np.abs(arr), MAX_DELTA_MAGNITUDE)
    return np.where(arr < 0, magnitude | (1 << DELTA_MAGNITUDE_BITS), magnitude)


def decode_delta(encoded: int) -> int:
    """Invert :func:`encode_delta` (for magnitudes within 6 bits)."""
    magnitude = encoded & MAX_DELTA_MAGNITUDE
    if encoded >> DELTA_MAGNITUDE_BITS:
        return -magnitude
    return magnitude
