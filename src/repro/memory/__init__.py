"""Memory substrate: caches, DRAM, and the three-level hierarchy."""

from .address import (
    BLOCK_BITS,
    BLOCK_SIZE,
    BLOCKS_PER_PAGE,
    PAGE_BITS,
    PAGE_SIZE,
    block_address,
    block_in_page,
    block_number,
    decode_delta,
    encode_delta,
    page_address,
    page_number,
    page_offset_block,
    same_page,
)
from .cache import Cache, CacheLine, CacheStats, EvictedLine
from .dram import DRAM, DRAMConfig, DRAMStats
from .hierarchy import AccessResult, HierarchyConfig, MemoryHierarchy
from .replacement import FIFOPolicy, LRUPolicy, RandomPolicy, ReplacementPolicy, make_policy

__all__ = [
    "BLOCK_BITS",
    "BLOCK_SIZE",
    "BLOCKS_PER_PAGE",
    "PAGE_BITS",
    "PAGE_SIZE",
    "block_address",
    "block_in_page",
    "block_number",
    "decode_delta",
    "encode_delta",
    "page_address",
    "page_number",
    "page_offset_block",
    "same_page",
    "Cache",
    "CacheLine",
    "CacheStats",
    "EvictedLine",
    "DRAM",
    "DRAMConfig",
    "DRAMStats",
    "AccessResult",
    "HierarchyConfig",
    "MemoryHierarchy",
    "FIFOPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "make_policy",
]
