"""Three-level cache hierarchy with prefetch-at-L2, as in the paper.

Per core: an L1D and a private L2 with one prefetcher instance.  Shared
across cores: the LLC and the DRAM model.  Prefetching is triggered only
on L2 demand accesses (paper §5.1); candidates fill either the L2 or the
LLC depending on the prefetcher's confidence decision.

Timing is latency-additive down the hierarchy, with two second-order
effects modelled because the paper's results depend on them:

* prefetch traffic occupies DRAM bandwidth (see :mod:`repro.memory.dram`),
  so inaccurate prefetching slows demand misses down;
* a prefetched line filled "in flight" stores its data-arrival cycle, and
  a demand access that arrives earlier pays the residual latency (late
  prefetches give partial benefit, as in ChampSim).

Writebacks are not modelled: the trace format carries loads (the PPF
mechanism trains only on the L2 demand-access/evict stream, which this
captures fully).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..prefetchers.base import NullPrefetcher, PrefetchCandidate, Prefetcher
from ..stats import GroupAdapter, StatsNode
from .cache import Cache, EvictedLine
from .dram import DRAM, DRAMConfig


@dataclass
class HierarchyConfig:
    """Cache geometry and latencies (core cycles), Table 1 defaults."""

    l1_size: int = 48 * 1024
    l1_assoc: int = 12
    l1_latency: int = 4
    l2_size: int = 512 * 1024
    l2_assoc: int = 8
    l2_latency: int = 10
    llc_size_per_core: int = 2 * 1024 * 1024
    llc_assoc: int = 16
    llc_latency: int = 38
    max_prefetches_per_trigger: int = 32
    #: In-flight prefetches a core may have outstanding (the prefetch
    #: insertion queue of Figure 4); candidates beyond it are dropped.
    prefetch_queue_size: int = 64

    @classmethod
    def default(cls) -> "HierarchyConfig":
        return cls()

    @classmethod
    def small_llc(cls) -> "HierarchyConfig":
        """DPC-2 small-LLC constraint: 512 KB last-level cache."""
        return cls(llc_size_per_core=512 * 1024)


@dataclass
class AccessResult:
    """Outcome of one demand access, for the core timing model."""

    __slots__ = ("ready_cycle", "level")

    ready_cycle: int
    level: str  # "l1", "l2", "llc" or "dram"


class MemoryHierarchy:
    """L1D/L2 per core, shared LLC and DRAM, prefetch hooks at L2."""

    def __init__(
        self,
        num_cores: int = 1,
        config: Optional[HierarchyConfig] = None,
        dram_config: Optional[DRAMConfig] = None,
        prefetchers: Optional[Sequence[Prefetcher]] = None,
    ) -> None:
        if num_cores < 1:
            raise ValueError("need at least one core")
        self.num_cores = num_cores
        self.config = config or HierarchyConfig.default()
        cfg = self.config
        self.l1: List[Cache] = [
            Cache(f"L1D{i}", cfg.l1_size, cfg.l1_assoc, cfg.l1_latency)
            for i in range(num_cores)
        ]
        self.l2: List[Cache] = [
            Cache(f"L2C{i}", cfg.l2_size, cfg.l2_assoc, cfg.l2_latency)
            for i in range(num_cores)
        ]
        self.llc = Cache(
            "LLC", cfg.llc_size_per_core * num_cores, cfg.llc_assoc, cfg.llc_latency
        )
        if dram_config is None:
            dram_config = (
                DRAMConfig.default() if num_cores == 1 else DRAMConfig.multicore(num_cores)
            )
        self.dram = DRAM(dram_config)
        if prefetchers is None:
            prefetchers = [NullPrefetcher() for _ in range(num_cores)]
        if len(prefetchers) != num_cores:
            raise ValueError("one prefetcher per core required")
        self.prefetchers: List[Prefetcher] = list(prefetchers)
        # Per-core prefetch insertion queue: completion cycles of
        # in-flight prefetches.  When full, further candidates drop.
        self._inflight_prefetches: List[List[int]] = [[] for _ in range(num_cores)]
        self.prefetches_dropped: List[int] = [0] * num_cores

        # The stats tree scopes every component's counters per level and
        # per core; ``snapshot()`` is what RunResult is built from.
        self.stats = StatsNode("hierarchy")
        for i in range(num_cores):
            scope = self.stats.child(f"core{i}")
            scope.attach("l1", self.l1[i].stats)
            scope.attach("l2", self.l2[i].stats)
            scope.attach("queue", self._queue_adapter(i))
            self.prefetchers[i].attach_stats(scope.child("prefetcher"))
        self.stats.attach("llc", self.llc.stats)
        self.stats.attach("dram", self.dram.stats)

    def _queue_adapter(self, core: int) -> GroupAdapter:
        def snapshot():
            return {"prefetches_dropped": self.prefetches_dropped[core]}

        def reset():
            self.prefetches_dropped[core] = 0

        return GroupAdapter(snapshot, reset)

    def core_snapshot(self, core: int):
        """Flattened stats for one core's private scope."""
        return self.stats.child(f"core{core}").snapshot()

    # -- demand path ---------------------------------------------------------

    def access(self, core: int, pc: int, addr: int, cycle: int) -> AccessResult:
        """Serve one demand load for ``core``; returns data-ready cycle."""
        l1 = self.l1[core]
        line = l1.lookup(addr)
        if line is not None:
            return AccessResult(cycle + l1.latency, "l1")
        return self._l2_demand(core, pc, addr, cycle + l1.latency)

    def _l2_demand(self, core: int, pc: int, addr: int, cycle: int) -> AccessResult:
        l2 = self.l2[core]
        prefetcher = self.prefetchers[core]
        line = l2.lookup(addr)
        hit = line is not None
        if hit:
            level = "l2"
            fill_cycle = line.fill_cycle
            if fill_cycle > cycle:
                # Late prefetch: data still in flight, pay the residual.
                ready = fill_cycle + l2.latency
            else:
                ready = cycle + l2.latency
            if line.is_prefetch:
                line.is_prefetch = False  # count each prefetch useful once
                prefetcher.on_useful_prefetch(addr)
        else:
            ready, level = self._llc_demand(core, addr, cycle + l2.latency)
            self._fill_l2(core, addr, is_prefetch=False, data_cycle=ready)

        # Prefetcher observes every L2 demand access, then candidates issue.
        candidates = prefetcher.train(addr, pc, hit, cycle)
        if candidates:
            prefetcher.note_candidates(len(candidates))
            issue = self._issue_prefetch
            for candidate in candidates[: self.config.max_prefetches_per_trigger]:
                issue(core, candidate, cycle)
        self.l1[core].fill(addr, is_prefetch=False, cycle=ready)
        return AccessResult(ready, level)

    def _llc_demand(self, core: int, addr: int, cycle: int) -> Tuple[int, str]:
        llc = self.llc
        line = llc.lookup(addr)
        if line is not None:
            if line.is_prefetch:
                line.is_prefetch = False
                self.prefetchers[core].on_useful_prefetch(addr)
            fill_cycle = line.fill_cycle
            if fill_cycle > cycle:
                return fill_cycle + llc.latency, "llc"
            return cycle + llc.latency, "llc"
        ready = self.dram.access(addr, cycle + llc.latency, is_prefetch=False)
        self._fill_llc(addr, is_prefetch=False, data_cycle=ready)
        return ready, "dram"

    # -- prefetch path ---------------------------------------------------------

    def _issue_prefetch(self, core: int, candidate: PrefetchCandidate, cycle: int) -> None:
        addr = candidate.addr
        l2 = self.l2[core]
        if l2.contains(addr):
            return  # redundant with L2 residency
        if not candidate.fill_l2 and self.llc.contains(addr):
            return  # redundant with LLC residency
        inflight = self._inflight_prefetches[core]
        if inflight:
            self._inflight_prefetches[core] = inflight = [
                done for done in inflight if done > cycle
            ]
        if len(inflight) >= self.config.prefetch_queue_size:
            self.prefetches_dropped[core] += 1
            return  # prefetch queue full: drop, as ChampSim's PQ does
        prefetcher = self.prefetchers[core]
        prefetcher.on_prefetch_issued(candidate)
        if self.llc.contains(addr):
            data_cycle = cycle + self.llc.latency
            fills_llc_as_prefetch = False
        else:
            data_cycle = self.dram.access(addr, cycle, is_prefetch=True)
            fills_llc_as_prefetch = True
        inflight.append(data_cycle)
        if candidate.fill_l2:
            if fills_llc_as_prefetch:
                self._fill_llc(addr, is_prefetch=True, data_cycle=data_cycle)
            self._fill_l2(core, addr, is_prefetch=True, data_cycle=data_cycle)
        else:
            if fills_llc_as_prefetch:
                self._fill_llc(addr, is_prefetch=True, data_cycle=data_cycle)

    # -- fills ------------------------------------------------------------------

    def _fill_l2(self, core: int, addr: int, *, is_prefetch: bool, data_cycle: int) -> None:
        evicted = self.l2[core].fill(addr, is_prefetch=is_prefetch, cycle=data_cycle)
        if evicted is not None:
            self._notify_l2_eviction(core, evicted)

    def _fill_llc(self, addr: int, *, is_prefetch: bool, data_cycle: int) -> None:
        self.llc.fill(addr, is_prefetch=is_prefetch, cycle=data_cycle)

    def _notify_l2_eviction(self, core: int, evicted: EvictedLine) -> None:
        self.prefetchers[core].on_eviction(
            evicted.block << 6, evicted.is_prefetch, evicted.used
        )

    # -- stats -----------------------------------------------------------------

    def reset_stats(self) -> None:
        """Zero every counter in the stats tree (the warmup boundary).

        Component *state* — cache contents, perceptron weights, SPP
        signatures — is untouched; only statistics reset.
        """
        self.stats.reset()
        for prefetcher in self.prefetchers:
            prefetcher.reset_stats()  # covers counters not mounted in the tree

    def snapshot(self):
        """Flattened stats for the whole hierarchy."""
        return self.stats.snapshot()

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self):
        """Compose every component's state into one tree.

        Stats ride along inside each component's section (and the queue
        drop counters here), so a mid-measurement snapshot resumes with
        its counters intact; warmup-boundary restores follow up with
        ``reset_stats()`` exactly like a straight run.
        """
        return {
            "l1": [cache.state_dict() for cache in self.l1],
            "l2": [cache.state_dict() for cache in self.l2],
            "llc": self.llc.state_dict(),
            "dram": self.dram.state_dict(),
            "prefetchers": [p.state_dict() for p in self.prefetchers],
            "inflight_prefetches": [list(q) for q in self._inflight_prefetches],
            "prefetches_dropped": list(self.prefetches_dropped),
        }

    def load_state(self, state) -> None:
        if len(state["l1"]) != self.num_cores or len(state["prefetchers"]) != self.num_cores:
            raise ValueError(
                f"snapshot targets {len(state['l1'])} cores, hierarchy has {self.num_cores}"
            )
        for cache, cache_state in zip(self.l1, state["l1"]):
            cache.load_state(cache_state)
        for cache, cache_state in zip(self.l2, state["l2"]):
            cache.load_state(cache_state)
        self.llc.load_state(state["llc"])
        self.dram.load_state(state["dram"])
        for prefetcher, prefetcher_state in zip(self.prefetchers, state["prefetchers"]):
            prefetcher.load_state(prefetcher_state)
        self._inflight_prefetches = [
            [int(cycle) for cycle in queue] for queue in state["inflight_prefetches"]
        ]
        self.prefetches_dropped[:] = [int(n) for n in state["prefetches_dropped"]]
