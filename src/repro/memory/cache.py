"""Set-associative cache model with prefetch-aware line metadata.

This is the building block of the ChampSim-like hierarchy.  Each line
tracks whether it was filled by a prefetch and whether a demand access
has touched it since the fill — exactly the feedback PPF trains on
(useful prefetch = demand hit on a prefetched line; useless prefetch =
eviction of a never-used prefetched line), and the inputs to SPP's
global accuracy counter α.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..checkpoint.state import group_state, load_group
from ..stats import StatGroup
from .address import BLOCK_BITS
from .replacement import ReplacementPolicy, make_policy


@dataclass
class CacheLine:
    """Metadata for one resident cache block."""

    __slots__ = ("block", "is_prefetch", "used", "fill_cycle")

    block: int
    is_prefetch: bool
    used: bool
    fill_cycle: int


@dataclass
class EvictedLine:
    """What ``fill`` reports when it displaces a resident line."""

    __slots__ = ("block", "is_prefetch", "used")

    block: int
    is_prefetch: bool
    used: bool

    @property
    def was_useless_prefetch(self) -> bool:
        """True when a prefetched line dies without ever being demanded."""
        return self.is_prefetch and not self.used


@dataclass
class CacheStats(StatGroup):
    """Per-cache event counters used by the evaluation metrics.

    A :class:`~repro.stats.StatGroup`: ``snapshot()``/``reset()`` come
    from the engine and the ``derived`` rate appears in every snapshot.
    """

    derived = ("demand_hit_rate",)

    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    fills: int = 0
    prefetch_fills: int = 0
    evictions: int = 0
    useful_prefetches: int = 0
    useless_prefetch_evictions: int = 0
    writebacks: int = 0

    @property
    def demand_hit_rate(self) -> float:
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_hits / self.demand_accesses

    @property
    def mpki_numerator(self) -> int:
        return self.demand_misses


class Cache:
    """A single set-associative cache level.

    Addresses are byte addresses; internally everything is tracked at
    block granularity.  The cache is a tag store only — data movement is
    implied.  ``lookup`` and ``fill`` are the two mutating operations;
    ``contains`` / ``probe`` are side-effect free.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        latency: int,
        replacement: str = "lru",
        replacement_seed: int = 0,
    ) -> None:
        if size_bytes <= 0 or associativity <= 0:
            raise ValueError("cache size and associativity must be positive")
        block_size = 1 << BLOCK_BITS
        num_blocks = size_bytes // block_size
        if num_blocks % associativity != 0:
            raise ValueError(
                f"{name}: {size_bytes} bytes / {associativity}-way does not "
                f"divide into whole sets of {block_size}-byte blocks"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.latency = latency
        self.num_sets = num_blocks // associativity
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(
                f"{name}: {self.num_sets} sets is not a power of two; set "
                f"indexing uses a bitmask, so size/associativity must yield "
                f"a power-of-two set count"
            )
        self._set_mask = self.num_sets - 1
        self.stats = CacheStats()
        self._policy: ReplacementPolicy = make_policy(replacement, replacement_seed)
        # Bound-method aliases shave an attribute hop off every access.
        self._policy_touch = self._policy.on_touch
        self._policy_insert = self._policy.on_insert
        self._policy_evict = self._policy.on_evict
        self._policy_victim = self._policy.victim
        self._sets: Dict[int, Dict[int, CacheLine]] = {}

    # -- indexing ----------------------------------------------------------

    def set_index(self, addr: int) -> int:
        """Map a byte address to its set."""
        return (addr >> BLOCK_BITS) & self._set_mask

    def _set_for(self, addr: int) -> Dict[int, CacheLine]:
        index = (addr >> BLOCK_BITS) & self._set_mask
        lines = self._sets.get(index)
        if lines is None:
            lines = {}
            self._sets[index] = lines
        return lines

    # -- queries -----------------------------------------------------------

    def contains(self, addr: int) -> bool:
        """Side-effect-free residency check."""
        block = addr >> BLOCK_BITS
        lines = self._sets.get(block & self._set_mask)
        return bool(lines) and block in lines

    def probe(self, addr: int) -> Optional[CacheLine]:
        """Side-effect-free line inspection (no stats, no LRU update)."""
        block = addr >> BLOCK_BITS
        lines = self._sets.get(block & self._set_mask)
        if not lines:
            return None
        return lines.get(block)

    # -- mutations ----------------------------------------------------------

    def lookup(self, addr: int, *, is_demand: bool = True) -> Optional[CacheLine]:
        """Access the cache; returns the line on a hit, ``None`` on a miss.

        Demand hits update recency, mark prefetched lines as used, and
        bump the stats.  Non-demand lookups (``is_demand=False``) model
        prefetch probes: they update nothing but the recency bit is also
        left untouched, so a stream of prefetch probes cannot keep dead
        lines alive.
        """
        block = addr >> BLOCK_BITS
        set_index = block & self._set_mask
        lines = self._sets.get(set_index)
        line = lines.get(block) if lines else None
        if not is_demand:
            return line
        stats = self.stats
        stats.demand_accesses += 1
        if line is None:
            stats.demand_misses += 1
            return None
        stats.demand_hits += 1
        if line.is_prefetch and not line.used:
            stats.useful_prefetches += 1
        line.used = True
        self._policy_touch(set_index, block)
        return line

    def fill(
        self,
        addr: int,
        *,
        is_prefetch: bool = False,
        cycle: int = 0,
    ) -> Optional[EvictedLine]:
        """Insert the block containing ``addr``; returns any evicted line.

        Filling a block that is already resident refreshes recency but
        keeps the stronger of the two origins (a demand fill clears the
        prefetch bit; a prefetch fill over a demand line is a no-op).
        """
        block = addr >> BLOCK_BITS
        set_index = block & self._set_mask
        lines = self._sets.get(set_index)
        if lines is None:
            lines = {}
            self._sets[set_index] = lines
        existing = lines.get(block)
        if existing is not None:
            if not is_prefetch:
                existing.is_prefetch = False
            self._policy_touch(set_index, block)
            return None
        evicted: Optional[EvictedLine] = None
        stats = self.stats
        if len(lines) >= self.associativity:
            victim = self._policy_victim(set_index)
            victim_line = lines.pop(victim)
            self._policy_evict(set_index, victim)
            stats.evictions += 1
            if victim_line.is_prefetch and not victim_line.used:
                stats.useless_prefetch_evictions += 1
            evicted = EvictedLine(
                victim_line.block, victim_line.is_prefetch, victim_line.used
            )
        lines[block] = CacheLine(block, is_prefetch, False, cycle)
        self._policy_insert(set_index, block)
        stats.fills += 1
        if is_prefetch:
            stats.prefetch_fills += 1
        return evicted

    def invalidate(self, addr: int) -> bool:
        """Drop the block containing ``addr``; True when it was resident."""
        block = addr >> BLOCK_BITS
        set_index = block & self._set_mask
        lines = self._sets.get(set_index)
        if not lines or block not in lines:
            return False
        del lines[block]
        self._policy_evict(set_index, block)
        return True

    def resident_blocks(self) -> int:
        """Total number of lines currently resident (for tests)."""
        return sum(len(lines) for lines in self._sets.values())

    @property
    def capacity_blocks(self) -> int:
        """How many lines fit (sets × ways)."""
        return self.num_sets * self.associativity

    def occupancy(self) -> float:
        """Resident fraction of capacity — a telemetry probe signal."""
        return self.resident_blocks() / self.capacity_blocks

    def reset_stats(self) -> None:
        self.stats.reset()

    # -- engine seam ---------------------------------------------------------

    def engine_view(self):
        """Raw mutable state for the batched engine's fused kernel.

        Returns ``(sets, lru_order, stats, associativity, set_mask,
        latency)`` or ``None`` when the replacement policy is not LRU (the
        fused kernel only inlines LRU; other policies take the generic
        path).  The engine relies on two invariants the scalar methods
        maintain: a resident block's tag is always present in its set's
        LRU order (so a touch is a plain ``move_to_end``), and
        ``popitem(last=False)`` on the order is exactly victim-selection
        plus eviction.  Both dicts are mutated in place and lazily
        populated per set index, mirroring :meth:`lookup`/:meth:`fill`.
        """
        from .replacement import LRUPolicy

        if type(self._policy) is not LRUPolicy:
            return None
        return (
            self._sets,
            self._policy._order,
            self.stats,
            self.associativity,
            self._set_mask,
            self.latency,
        )

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Lines, replacement metadata and stats, order-preserving.

        Sets serialize as pair lists of pair lists: fill order within a
        set is live state (dict iteration feeds nothing today, but tag
        lookups and the policy's own ordering must agree after restore),
        and JSON objects would stringify the int keys.
        """
        return {
            "sets": [
                [
                    set_index,
                    [
                        [line.block, line.is_prefetch, line.used, line.fill_cycle]
                        for line in lines.values()
                    ],
                ]
                for set_index, lines in self._sets.items()
            ],
            "policy": self._policy.state_dict(),
            "stats": group_state(self.stats),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._sets = {
            int(set_index): {
                int(block): CacheLine(int(block), bool(is_prefetch), bool(used), int(fill_cycle))
                for block, is_prefetch, used, fill_cycle in lines
            }
            for set_index, lines in state["sets"]
        }
        # The bound-method aliases keep pointing at this policy object,
        # which load_state mutates rather than replaces.
        self._policy.load_state(state["policy"])
        load_group(self.stats, state["stats"])
