"""DRAM timing model: per-channel bandwidth caps and a row-buffer.

The paper's single-core configuration is one DDR channel at 12.8 GB/s;
the DPC-2 "low bandwidth" constraint study drops that to 3.2 GB/s.  At a
4 GHz core clock a 64-byte transfer occupies the data bus for

    64 B / 12.8 GB/s = 5 ns = 20 core cycles     (default)
    64 B /  3.2 GB/s = 20 ns = 80 core cycles    (low bandwidth)

The model is deliberately simple but captures the two effects PPF's
evaluation depends on:

* **bandwidth contention** — each access occupies its channel for
  ``cycles_per_transfer`` cycles, so useless prefetches delay demands;
* **row-buffer locality** — hits to the open row are served faster,
  which is what DA-AMPM exploits by batching same-row prefetches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from ..checkpoint.state import group_state, load_group
from ..stats import StatGroup

ROW_BITS = 13  # 8 KB DRAM rows


@dataclass
class DRAMConfig:
    """Timing parameters, all in core cycles (4 GHz core assumed)."""

    channels: int = 1
    cycles_per_transfer: int = 20  # 12.8 GB/s at 4 GHz, 64 B blocks
    row_hit_latency: int = 110
    row_miss_latency: int = 170

    @classmethod
    def default(cls) -> "DRAMConfig":
        """Paper's single-core configuration (12.8 GB/s)."""
        return cls()

    @classmethod
    def low_bandwidth(cls) -> "DRAMConfig":
        """DPC-2 low-bandwidth constraint: 3.2 GB/s."""
        return cls(cycles_per_transfer=80)

    @classmethod
    def multicore(cls, cores: int) -> "DRAMConfig":
        """Shared-memory configuration: one channel per two cores."""
        return cls(channels=max(1, cores // 2))


@dataclass
class DRAMStats(StatGroup):
    """DRAM event counters; the derived rates ride along in snapshots."""

    derived = ("row_hit_rate", "mean_queue_delay")

    accesses: int = 0
    demand_accesses: int = 0
    prefetch_accesses: int = 0
    row_hits: int = 0
    row_misses: int = 0
    total_queue_delay: int = 0

    @property
    def row_hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.row_hits / self.accesses

    @property
    def mean_queue_delay(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.total_queue_delay / self.accesses


class DRAM:
    """Multi-channel DRAM with open-row policy and a bus occupancy cap."""

    def __init__(self, config: DRAMConfig | None = None) -> None:
        self.config = config or DRAMConfig()
        self.stats = DRAMStats()
        self._next_free: List[int] = [0] * self.config.channels
        self._open_row: List[int] = [-1] * self.config.channels

    def channel_of(self, addr: int) -> int:
        """Interleave channels at block granularity."""
        return (addr >> 6) % self.config.channels

    def row_of(self, addr: int) -> int:
        return addr >> ROW_BITS

    def access(self, addr: int, cycle: int, *, is_prefetch: bool = False) -> int:
        """Issue one 64-byte access; returns the cycle its data is ready.

        The channel is occupied for ``cycles_per_transfer`` after the
        access starts, which is how prefetch traffic steals bandwidth
        from later demand requests.
        """
        cfg = self.config
        channel = self.channel_of(addr)
        start = max(cycle, self._next_free[channel])
        queue_delay = start - cycle

        row = self.row_of(addr)
        if self._open_row[channel] == row:
            latency = cfg.row_hit_latency
            self.stats.row_hits += 1
        else:
            latency = cfg.row_miss_latency
            self.stats.row_misses += 1
            self._open_row[channel] = row

        self._next_free[channel] = start + cfg.cycles_per_transfer

        self.stats.accesses += 1
        if is_prefetch:
            self.stats.prefetch_accesses += 1
        else:
            self.stats.demand_accesses += 1
        self.stats.total_queue_delay += queue_delay
        return start + latency

    def next_free_cycle(self, addr: int) -> int:
        """When the channel serving ``addr`` frees up (for tests)."""
        return self._next_free[self.channel_of(addr)]

    def reset_stats(self) -> None:
        self.stats.reset()

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "next_free": list(self._next_free),
            "open_row": list(self._open_row),
            "stats": group_state(self.stats),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        next_free = [int(cycle) for cycle in state["next_free"]]
        if len(next_free) != self.config.channels:
            raise ValueError(
                f"snapshot has {len(next_free)} channels, DRAM has {self.config.channels}"
            )
        self._next_free[:] = next_free
        self._open_row[:] = [int(row) for row in state["open_row"]]
        load_group(self.stats, state["stats"])
