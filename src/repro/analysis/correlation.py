"""Statistical tools for the §5.5 feature methodology.

The paper interprets trained perceptron weights statistically:

* **weight histograms** (Figure 6) — a feature whose trained weights
  saturate near ±15 carries a strong signal; one whose weights cluster
  around zero learned nothing;
* **Pearson factor per feature** (Figures 7–8) — the linear correlation
  between a feature's trained weight and the empirical outcome of the
  prefetches that touched that weight.  High |P| means the feature's
  weight reliably predicts usefulness.

:class:`OutcomeTracker` plugs into :class:`repro.core.ppf.PPF` as its
``recorder`` and accumulates, per feature table index, how many resolved
training events were positive vs negative.  The Pearson factor then
correlates trained weight values against per-index outcome means,
weighted by traffic.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from ..core.filter import PerceptronFilter
from ..core.weights import WEIGHT_MAX, WEIGHT_MIN


def pearson(x: Sequence[float], y: Sequence[float], weights: Sequence[float] | None = None) -> float:
    """(Weighted) Pearson correlation coefficient of two samples.

    Returns 0.0 when either sample has zero variance (an uninformative
    feature correlates with nothing, which is exactly the paper's
    reading of a near-zero P-value).
    """
    n = len(x)
    if n != len(y):
        raise ValueError("samples must have equal length")
    if n == 0:
        return 0.0
    if weights is None:
        weights = [1.0] * n
    elif len(weights) != n:
        raise ValueError("need one weight per sample")
    total = float(sum(weights))
    if total <= 0:
        return 0.0
    mean_x = sum(w * a for w, a in zip(weights, x)) / total
    mean_y = sum(w * b for w, b in zip(weights, y)) / total
    cov = var_x = var_y = 0.0
    for w, a, b in zip(weights, x, y):
        dx = a - mean_x
        dy = b - mean_y
        cov += w * dx * dy
        var_x += w * dx * dx
        var_y += w * dy * dy
    denominator = math.sqrt(var_x) * math.sqrt(var_y)
    if denominator <= 0.0:
        return 0.0
    return cov / denominator


class OutcomeTracker:
    """Per-feature, per-index outcome counts of resolved training events.

    Use as ``PPF(recorder=tracker)``: every positive/negative training
    event increments the touched index of every feature table.
    """

    def __init__(self, n_features: int) -> None:
        if n_features < 1:
            raise ValueError("need at least one feature")
        self.n_features = n_features
        self.positive: List[Counter] = [Counter() for _ in range(n_features)]
        self.negative: List[Counter] = [Counter() for _ in range(n_features)]
        self.events = 0

    def __call__(self, indices: Tuple[int, ...], positive: bool) -> None:
        if len(indices) != self.n_features:
            raise ValueError(
                f"recorder built for {self.n_features} features, got {len(indices)} indices"
            )
        self.events += 1
        counters = self.positive if positive else self.negative
        for feature_slot, index in enumerate(indices):
            counters[feature_slot][index] += 1

    def outcome_samples(self, feature_slot: int) -> Tuple[List[int], List[float], List[float]]:
        """(indices, mean outcome in [-1, 1], traffic weight) per index."""
        pos = self.positive[feature_slot]
        neg = self.negative[feature_slot]
        indices = sorted(set(pos) | set(neg))
        outcomes = []
        traffic = []
        for index in indices:
            p, n = pos[index], neg[index]
            outcomes.append((p - n) / (p + n))
            traffic.append(float(p + n))
        return indices, outcomes, traffic

    def merge(self, other: "OutcomeTracker") -> None:
        """Accumulate another tracker (per-trace → suite aggregation)."""
        if other.n_features != self.n_features:
            raise ValueError("trackers cover different feature counts")
        self.events += other.events
        for slot in range(self.n_features):
            self.positive[slot].update(other.positive[slot])
            self.negative[slot].update(other.negative[slot])


def feature_pearson(
    filter_: PerceptronFilter, tracker: OutcomeTracker, feature_slot: int
) -> float:
    """Pearson factor of one feature: trained weight vs outcome mean."""
    indices, outcomes, traffic = tracker.outcome_samples(feature_slot)
    if not indices:
        return 0.0
    table = filter_.tables[feature_slot]
    weights = [table.read(index) for index in indices]
    return pearson(weights, outcomes, traffic)


def all_feature_pearsons(
    filter_: PerceptronFilter, tracker: OutcomeTracker
) -> Dict[str, float]:
    """Figure 7: Pearson factor for every feature in the filter."""
    return {
        feature.name: feature_pearson(filter_, tracker, slot)
        for slot, feature in enumerate(filter_.features)
    }


def weight_histogram(values: Sequence[int]) -> Dict[int, int]:
    """Figure 6: how many weights hold each value in [-16, +15].

    Untouched (zero) weights are included — the paper's "bulk of trained
    weights settling to near zero values" reading depends on them.
    """
    histogram = {value: 0 for value in range(WEIGHT_MIN, WEIGHT_MAX + 1)}
    for value in values:
        if not WEIGHT_MIN <= value <= WEIGHT_MAX:
            raise ValueError(f"weight {value} outside 5-bit range")
        histogram[value] += 1
    return histogram


def histogram_concentration_near_zero(histogram: Dict[int, int], radius: int = 2) -> float:
    """Fraction of weights within ``radius`` of zero (rejection signal)."""
    total = sum(histogram.values())
    if total == 0:
        return 1.0
    near = sum(count for value, count in histogram.items() if abs(value) <= radius)
    return near / total


def histogram_saturation(histogram: Dict[int, int], margin: int = 2) -> float:
    """Fraction of *touched* weights saturated near ±max (strong signal)."""
    touched = sum(count for value, count in histogram.items() if value != 0)
    if touched == 0:
        return 0.0
    saturated = sum(
        count
        for value, count in histogram.items()
        if value <= WEIGHT_MIN + margin or value >= WEIGHT_MAX - margin
    )
    return saturated / touched
