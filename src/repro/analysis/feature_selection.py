"""The §5.5 feature-development methodology, end to end.

The paper started from 23 candidate features, then:

1. computed each feature's **global Pearson factor** over the trained
   weights of all SPEC CPU 2017 traces (Figure 7) and dropped features
   with no correlation (Figure 6's "Last Signature" example);
2. checked **per-trace** correlation so a feature that is globally weak
   but strong on some traces (PC⊕Delta) survives (Figure 8);
3. computed the 23×23 **cross-correlation matrix** of the features and,
   for every pair correlated above 0.9, dropped the member with the
   weaker global factor — leaving 9 features with non-redundant signal.

This module re-runs that study on the reproduction's workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.features import Feature, exploration_features
from ..core.filter import FilterConfig, PerceptronFilter
from ..core.ppf import PPF
from ..prefetchers.spp import SPP, SPPConfig
from ..sim.config import SimConfig
from ..sim.single_core import run_single_core
from ..workloads.spec2017 import WorkloadSpec
from .correlation import OutcomeTracker, feature_pearson, pearson


@dataclass
class RecordedRun:
    """One trace's trained filter plus its outcome statistics."""

    workload: str
    filter: PerceptronFilter
    tracker: OutcomeTracker


@dataclass
class FeatureStudy:
    """Aggregated evidence about one feature catalog over many traces."""

    features: List[Feature]
    runs: List[RecordedRun] = field(default_factory=list)

    def global_pearson(self) -> Dict[str, float]:
        """Figure 7: traffic-weighted Pearson over all traces combined.

        The paper concatenates the weights of all trace runs; merging
        the per-index samples of every run is the same computation.
        """
        out: Dict[str, float] = {}
        for slot, feature in enumerate(self.features):
            xs: List[float] = []
            ys: List[float] = []
            ws: List[float] = []
            for run in self.runs:
                indices, outcomes, traffic = run.tracker.outcome_samples(slot)
                table = run.filter.tables[slot]
                xs.extend(table.read(i) for i in indices)
                ys.extend(outcomes)
                ws.extend(traffic)
            out[feature.name] = pearson(xs, ys, ws)
        return out

    def per_trace_pearson(self) -> Dict[str, Dict[str, float]]:
        """Figure 8: feature name -> workload -> Pearson factor."""
        out: Dict[str, Dict[str, float]] = {f.name: {} for f in self.features}
        for run in self.runs:
            for slot, feature in enumerate(self.features):
                out[feature.name][run.workload] = feature_pearson(
                    run.filter, run.tracker, slot
                )
        return out

    def cross_correlation(self) -> List[List[float]]:
        """The NxN feature cross-correlation matrix.

        Two features are redundant when, across weight-table indices that
        saw traffic, they assign correlated outcome evidence.  We
        correlate the per-feature *outcome profiles* of training events:
        for each run and each feature, the sequence of per-index outcome
        means sampled by shared traffic.  Concretely we correlate the
        trained-weight value each feature would contribute to the same
        stream of events.
        """
        n = len(self.features)
        profiles: List[List[float]] = [[] for _ in range(n)]
        for run in self.runs:
            # Reconstruct each feature's contribution profile over a
            # common event stream: weight each index by its traffic.
            per_slot = []
            for slot in range(n):
                indices, outcomes, traffic = run.tracker.outcome_samples(slot)
                table = run.filter.tables[slot]
                expanded: List[float] = []
                for index, weight_count in zip(indices, traffic):
                    # One sample per ~8 events keeps the profile bounded.
                    repeats = max(1, int(weight_count) // 8)
                    expanded.extend([float(table.read(index))] * repeats)
                per_slot.append(expanded)
            common = min((len(p) for p in per_slot), default=0)
            if common == 0:
                continue
            for slot in range(n):
                profiles[slot].extend(per_slot[slot][:common])
        matrix = [[0.0] * n for _ in range(n)]
        for i in range(n):
            matrix[i][i] = 1.0
            for j in range(i + 1, n):
                r = pearson(profiles[i], profiles[j])
                matrix[i][j] = r
                matrix[j][i] = r
        return matrix

    def trim(
        self, redundancy_threshold: float = 0.9, keep: Optional[int] = None
    ) -> List[Feature]:
        """Apply the paper's trimming rule to this study's evidence.

        For every feature pair with |cross-correlation| above the
        threshold, drop the member with the smaller |global Pearson|.
        Optionally keep only the ``keep`` strongest survivors.
        """
        global_p = self.global_pearson()
        matrix = self.cross_correlation()
        alive = list(range(len(self.features)))
        dropped = set()
        order = sorted(
            alive, key=lambda i: abs(global_p[self.features[i].name]), reverse=True
        )
        for rank, i in enumerate(order):
            if i in dropped:
                continue
            for j in order[rank + 1 :]:
                if j in dropped:
                    continue
                if abs(matrix[i][j]) > redundancy_threshold:
                    dropped.add(j)
        survivors = [
            self.features[i] for i in range(len(self.features)) if i not in dropped
        ]
        if keep is not None:
            survivors.sort(
                key=lambda f: abs(global_p[f.name]), reverse=True
            )
            survivors = survivors[:keep]
        return survivors


def run_feature_study(
    workloads: Sequence[WorkloadSpec],
    features: Optional[Sequence[Feature]] = None,
    config: Optional[SimConfig] = None,
    filter_config: Optional[FilterConfig] = None,
    seed: int = 1,
) -> FeatureStudy:
    """Run PPF with outcome recording over each workload (§5.5 setup)."""
    feature_list = list(features) if features is not None else exploration_features()
    study = FeatureStudy(features=feature_list)
    config = config or SimConfig.quick()
    for workload in workloads:
        tracker = OutcomeTracker(len(feature_list))
        ppf = PPF(
            underlying=SPP(SPPConfig.aggressive()),
            features=feature_list,
            filter_config=filter_config,
            recorder=tracker,
        )
        run_single_core(workload, ppf, config, seed=seed)
        study.runs.append(
            RecordedRun(workload=workload.name, filter=ppf.filter, tracker=tracker)
        )
    return study
