"""Hardware storage accounting — reproduces Tables 2 and 3 (§5.6).

Every structure of the SPP+PPF design is accounted at bit granularity.
The paper's totals are matched exactly:

* Prefetch Table entry: **85 bits** (Table 2),
* whole design: **322,240 bits = 39.34 KB** (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class FieldSpec:
    """One named bit-field of a table entry."""

    name: str
    bits: int
    comment: str = ""


@dataclass(frozen=True)
class StructureSpec:
    """One hardware structure: entries × per-entry fields."""

    name: str
    entries: int
    fields: Tuple[FieldSpec, ...]

    @property
    def bits_per_entry(self) -> int:
        return sum(field.bits for field in self.fields)

    @property
    def total_bits(self) -> int:
        return self.entries * self.bits_per_entry


def prefetch_table_entry_fields() -> List[FieldSpec]:
    """Table 2: metadata stored in each Prefetch Table entry (85 bits)."""
    return [
        FieldSpec("Valid", 1, "Indicates a valid entry in the table"),
        FieldSpec("Tag", 6, "Identifier for the entry in the table"),
        FieldSpec("Useful", 1, "Entry led to a useful demand fetch"),
        FieldSpec("Perc Decision", 1, "Prefetched vs not-prefetched"),
        FieldSpec("PC", 12, "Triggering PC (hashed)"),
        FieldSpec("Address", 24, "Prefetch block address bits"),
        FieldSpec("Curr Signature", 10, "SPP signature at prediction"),
        FieldSpec("PCi Hash", 12, "PC1^PC2>>1^PC3>>2 path hash"),
        FieldSpec("Delta", 7, "Predicted delta (sign+magnitude)"),
        FieldSpec("Confidence", 7, "SPP path confidence 0-100"),
        FieldSpec("Depth", 4, "Lookahead depth"),
    ]


def _perceptron_weight_structures() -> List[StructureSpec]:
    """Table 3's weight banks: 4×4096, 2×2048, 2×1024, 1×128 entries."""
    weight = (FieldSpec("Weight", 5, "5-bit saturating counter"),)
    return [
        StructureSpec("Perceptron Weights (4096x4)", 4096 * 4, weight),
        StructureSpec("Perceptron Weights (2048x2)", 2048 * 2, weight),
        StructureSpec("Perceptron Weights (1024x2)", 1024 * 2, weight),
        StructureSpec("Perceptron Weights (128x1)", 128 * 1, weight),
    ]


def storage_inventory() -> List[StructureSpec]:
    """Table 3: every structure in the SPP+PPF design."""
    pt_fields = tuple(prefetch_table_entry_fields())
    rt_fields = tuple(
        field for field in pt_fields if field.name != "Useful"
    )  # the Reject Table needs no useful bit (Table 3, footnote 2)
    return [
        StructureSpec(
            "Signature Table",
            256,
            (
                FieldSpec("Valid", 1),
                FieldSpec("Tag", 16),
                FieldSpec("Last Offset", 6),
                FieldSpec("Signature", 12),
                FieldSpec("LRU", 8),
            ),
        ),
        StructureSpec(
            "Pattern Table",
            512,
            (
                FieldSpec("C_sig", 4),
                FieldSpec("C_delta x4", 4 * 4),
                FieldSpec("Delta x4", 4 * 7),
            ),
        ),
        *_perceptron_weight_structures(),
        StructureSpec("Prefetch Table", 1024, pt_fields),
        StructureSpec("Reject Table", 1024, rt_fields),
        StructureSpec(
            "Global History Register",
            8,
            (
                FieldSpec("Signature", 12),
                FieldSpec("Confidence", 8),
                FieldSpec("Last Offset", 6),
                FieldSpec("Delta", 7),
            ),
        ),
        StructureSpec("Accuracy Counter C_total", 1, (FieldSpec("C_total", 10),)),
        StructureSpec("Accuracy Counter C_useful", 1, (FieldSpec("C_useful", 10),)),
        StructureSpec(
            "Global PC Trackers",
            3,
            (FieldSpec("PC", 12),),
        ),
    ]


def total_storage_bits() -> int:
    """The paper's bottom line: 322,240 bits."""
    return sum(structure.total_bits for structure in storage_inventory())


def total_storage_kilobytes() -> float:
    """The paper's bottom line: 39.34 KB."""
    return total_storage_bits() / 8 / 1024


def perceptron_weight_bits() -> int:
    """Weight-bank subtotal the paper reports as 113,280 bits."""
    return sum(structure.total_bits for structure in _perceptron_weight_structures())


def adder_tree_depth(feature_count: int = 9) -> int:
    """§5.6: ceil(log2 N) adder stages to sum N weights (4 for N=9)."""
    if feature_count < 1:
        raise ValueError("need at least one feature")
    depth = 0
    remaining = feature_count
    while remaining > 1:
        remaining = (remaining + 1) // 2
        depth += 1
    return depth


def overhead_report() -> Dict[str, float]:
    """Summary numbers for EXPERIMENTS.md and the bench harness."""
    return {
        "prefetch_table_entry_bits": sum(f.bits for f in prefetch_table_entry_fields()),
        "perceptron_weight_bits": perceptron_weight_bits(),
        "total_bits": total_storage_bits(),
        "total_kilobytes": round(total_storage_kilobytes(), 2),
        "adder_tree_depth": adder_tree_depth(9),
    }
