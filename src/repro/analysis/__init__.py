"""Analyses from the paper: feature selection (§5.5) and overhead (§5.6)."""

from .correlation import (
    OutcomeTracker,
    all_feature_pearsons,
    feature_pearson,
    histogram_concentration_near_zero,
    histogram_saturation,
    pearson,
    weight_histogram,
)
from .feature_selection import FeatureStudy, RecordedRun, run_feature_study
from .sensitivity import (
    SensitivityPoint,
    SensitivityResult,
    default_settings,
    sweep_thresholds,
)
from .traffic import TrafficBreakdown, compare_traffic, traffic_breakdown
from .overhead import (
    FieldSpec,
    StructureSpec,
    adder_tree_depth,
    overhead_report,
    perceptron_weight_bits,
    prefetch_table_entry_fields,
    storage_inventory,
    total_storage_bits,
    total_storage_kilobytes,
)

__all__ = [
    "OutcomeTracker",
    "all_feature_pearsons",
    "feature_pearson",
    "histogram_concentration_near_zero",
    "histogram_saturation",
    "pearson",
    "weight_histogram",
    "FeatureStudy",
    "RecordedRun",
    "run_feature_study",
    "SensitivityPoint",
    "SensitivityResult",
    "default_settings",
    "sweep_thresholds",
    "TrafficBreakdown",
    "compare_traffic",
    "traffic_breakdown",
    "FieldSpec",
    "StructureSpec",
    "adder_tree_depth",
    "overhead_report",
    "perceptron_weight_bits",
    "prefetch_table_entry_fields",
    "storage_inventory",
    "total_storage_bits",
    "total_storage_kilobytes",
]
