"""Memory-traffic accounting: where the bandwidth goes, per scheme.

Figure 1's argument is about *waste*: inaccurate prefetches consume DRAM
slots and cache capacity that demands needed.  This module breaks one
workload's traffic down per scheme — demand vs prefetch DRAM accesses,
queueing delay, useless-prefetch evictions — so the waste the paper
plots as IPC loss can be inspected directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..cpu.o3core import O3Core
from ..memory.hierarchy import MemoryHierarchy
from ..sim.config import SimConfig
from ..sim.single_core import make_prefetcher
from ..workloads.spec2017 import WorkloadSpec


@dataclass
class TrafficBreakdown:
    """One scheme's traffic picture on one workload."""

    scheme: str
    ipc: float
    demand_dram: int
    prefetch_dram: int
    mean_queue_delay: float
    useless_evictions: int
    useful_prefetches: int
    prefetches_dropped: int

    @property
    def total_dram(self) -> int:
        return self.demand_dram + self.prefetch_dram

    @property
    def prefetch_share(self) -> float:
        """Fraction of DRAM traffic that is prefetch-generated."""
        if self.total_dram == 0:
            return 0.0
        return self.prefetch_dram / self.total_dram

    @property
    def waste_rate(self) -> float:
        """Useless evictions per prefetch DRAM access."""
        if self.prefetch_dram == 0:
            return 0.0
        return self.useless_evictions / self.prefetch_dram


def traffic_breakdown(
    workload: WorkloadSpec,
    scheme: str,
    config: Optional[SimConfig] = None,
    seed: int = 1,
) -> TrafficBreakdown:
    """Simulate one (workload, scheme) pair and account its traffic."""
    import itertools

    config = config or SimConfig.quick()
    prefetcher = make_prefetcher(scheme)
    hierarchy = MemoryHierarchy(
        num_cores=1,
        config=config.hierarchy,
        dram_config=config.dram,
        prefetchers=[prefetcher],
    )
    core = O3Core(0, hierarchy, config.core)
    trace = workload.trace(config.warmup_records + config.measure_records, seed=seed)
    for rec in itertools.islice(trace, config.warmup_records):
        core.step(rec)
    hierarchy.reset_stats()
    hierarchy.prefetches_dropped[0] = 0
    core.begin_measurement()
    for rec in trace:
        core.step(rec)
    core.drain()
    result = core.result()
    dram = hierarchy.dram.stats
    l2 = hierarchy.l2[0].stats
    return TrafficBreakdown(
        scheme=scheme,
        ipc=result.instructions / max(1, result.cycles),
        demand_dram=dram.demand_accesses,
        prefetch_dram=dram.prefetch_accesses,
        mean_queue_delay=dram.mean_queue_delay,
        useless_evictions=l2.useless_prefetch_evictions,
        useful_prefetches=prefetcher.stats.useful,
        prefetches_dropped=hierarchy.prefetches_dropped[0],
    )


def compare_traffic(
    workload: WorkloadSpec,
    schemes: Sequence[str] = ("none", "spp", "ppf"),
    config: Optional[SimConfig] = None,
    seed: int = 1,
) -> List[TrafficBreakdown]:
    """Traffic breakdowns for several schemes on one workload."""
    return [traffic_breakdown(workload, scheme, config, seed) for scheme in schemes]


def report(breakdowns: Sequence[TrafficBreakdown], workload_name: str = "") -> str:
    from ..harness.report import render_table

    rows = [
        (
            b.scheme,
            b.ipc,
            b.demand_dram,
            b.prefetch_dram,
            f"{100 * b.prefetch_share:.0f}%",
            b.mean_queue_delay,
            b.useless_evictions,
            b.prefetches_dropped,
        )
        for b in breakdowns
    ]
    title = "Memory-traffic breakdown"
    if workload_name:
        title += f" — {workload_name}"
    return render_table(
        [
            "scheme",
            "IPC",
            "demand DRAM",
            "prefetch DRAM",
            "pf share",
            "queue delay",
            "useless evictions",
            "dropped",
        ],
        rows,
        title=title,
    )
