"""Threshold-sensitivity analysis for PPF's tunables.

The paper fixes τ_hi/τ_lo (inference) and θ_p/θ_n (training saturation)
empirically.  This module sweeps them so a user porting PPF to a new
machine or prefetcher can re-tune with evidence — the same spirit as
§3.2's "Optimizing PPF for a Given Prefetcher".

Each sweep runs PPF over a workload slice with one knob varied and
reports geomean speedup, accuracy and accept-rate per setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.filter import FilterConfig
from ..core.ppf import PPF
from ..sim.config import SimConfig
from ..sim.metrics import geometric_mean
from ..sim.single_core import run_single_core
from ..workloads.spec2017 import WorkloadSpec, memory_intensive_subset


@dataclass
class SensitivityPoint:
    """One knob setting and its measured aggregates."""

    setting: Tuple[int, ...]
    geomean_speedup: float
    mean_accuracy: float
    mean_accept_rate: float


@dataclass
class SensitivityResult:
    knob: str
    points: List[SensitivityPoint]

    def best(self) -> SensitivityPoint:
        return max(self.points, key=lambda p: p.geomean_speedup)

    def spread_percent(self) -> float:
        """How much the knob matters: best vs worst geomean, in percent."""
        speedups = [p.geomean_speedup for p in self.points]
        return 100.0 * (max(speedups) / min(speedups) - 1.0)


def _filter_config_for(knob: str, setting: Tuple[int, ...]) -> FilterConfig:
    base = FilterConfig.default()
    if knob == "tau":
        tau_hi, tau_lo = setting
        return FilterConfig(
            tau_hi=tau_hi, tau_lo=tau_lo, theta_p=base.theta_p, theta_n=base.theta_n
        )
    if knob == "theta":
        theta_p, theta_n = setting
        return FilterConfig(
            tau_hi=base.tau_hi, tau_lo=base.tau_lo, theta_p=theta_p, theta_n=theta_n
        )
    raise ValueError(f"unknown knob {knob!r}")


def default_settings(knob: str) -> List[Tuple[int, ...]]:
    """Sweep grids centred on the paper-style defaults."""
    if knob == "tau":
        return [(10, 0), (0, -10), (-5, -15), (-10, -25), (-20, -40)]
    if knob == "theta":
        return [(30, -30), (60, -60), (90, -90), (150, -150), (1000, -1000)]
    raise ValueError(f"unknown knob {knob!r}")


def sweep_thresholds(
    knob: str,
    settings: Optional[Sequence[Tuple[int, ...]]] = None,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    config: Optional[SimConfig] = None,
    seed: int = 1,
) -> SensitivityResult:
    """Sweep one knob ('tau' or 'theta') over a workload slice."""
    settings = list(settings) if settings is not None else default_settings(knob)
    workload_list = (
        list(workloads) if workloads is not None else memory_intensive_subset()[:3]
    )
    config = config or SimConfig.quick()
    baselines = {
        w.name: run_single_core(w, "none", config, seed=seed).ipc for w in workload_list
    }
    points: List[SensitivityPoint] = []
    for setting in settings:
        filter_config = _filter_config_for(knob, setting)
        speedups = []
        accuracies = []
        accept_rates = []
        for workload in workload_list:
            ppf = PPF(filter_config=filter_config)
            result = run_single_core(workload, ppf, config, seed=seed)
            speedups.append(result.ipc / baselines[workload.name])
            accuracies.append(result.accuracy)
            accept_rates.append(ppf.filter.stats.accept_rate)
        points.append(
            SensitivityPoint(
                setting=tuple(setting),
                geomean_speedup=geometric_mean(speedups),
                mean_accuracy=sum(accuracies) / len(accuracies),
                mean_accept_rate=sum(accept_rates) / len(accept_rates),
            )
        )
    return SensitivityResult(knob=knob, points=points)


def report(result: SensitivityResult) -> str:
    from ..harness.report import render_table

    rows = [
        (
            str(point.setting),
            point.geomean_speedup,
            point.mean_accuracy,
            point.mean_accept_rate,
        )
        for point in result.points
    ]
    return render_table(
        [f"{result.knob} setting", "geomean speedup", "accuracy", "accept rate"],
        rows,
        title=f"Sensitivity — {result.knob} thresholds "
        f"(spread {result.spread_percent():.1f}%)",
    )
