"""Near-zero-overhead event tracing: a ring buffer behind one flag.

The contract with the hot paths is strict: code that *might* trace
guards every emission with a single attribute check —

    if tracer.enabled:
        tracer.instant("measure_begin", cycle)

— and the simulation drivers go one step further by not installing a
tracer at all unless a telemetry session is active, so the per-record
loop of PR 3 stays bit-for-bit identical when telemetry is off (see
``SingleCoreSim.advance``).

Events land in a fixed-capacity ring buffer (old events are overwritten,
``dropped`` counts the loss) so a runaway trace can never exhaust
memory; exporters read them back in chronological order via
:meth:`Tracer.events`.

Timestamps are caller-supplied, not wall-clock: simulation events are
stamped with the simulated cycle, sweep lifecycle events with seconds
since the sweep epoch.  That keeps recorded runs deterministic — two
traces of the same simulation are identical artifacts.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional


class Event:
    """One trace event (a Chrome ``trace_event``-shaped record)."""

    __slots__ = ("name", "cat", "ph", "ts", "dur", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        ph: str,
        ts: float,
        dur: Optional[float] = None,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.dur = dur
        self.args = args

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
        }
        if self.dur is not None:
            out["dur"] = self.dur
        if self.args is not None:
            out["args"] = dict(self.args)
        return out

    def __repr__(self) -> str:
        return f"Event({self.name!r}, ph={self.ph!r}, ts={self.ts})"


class Tracer:
    """Fixed-capacity event recorder with a one-attribute disabled path.

    ``enabled`` is a plain attribute — reading it is the *entire* cost
    of a disabled trace point.  Emission appends into a preallocated
    ring: no allocation beyond the event record itself, no I/O, no
    clock reads.
    """

    __slots__ = ("enabled", "capacity", "dropped", "_ring", "_next", "_count")

    def __init__(self, capacity: int = 65536, enabled: bool = True) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.enabled = enabled
        self.capacity = capacity
        self.dropped = 0
        self._ring: List[Optional[Event]] = [None] * capacity
        self._next = 0  # ring slot the next event lands in
        self._count = 0  # total events ever emitted

    # -- emission --------------------------------------------------------------

    def emit(self, event: Event) -> None:
        """Record one event (overwrites the oldest when full)."""
        slot = self._next
        if self._ring[slot] is not None:
            self.dropped += 1
        self._ring[slot] = event
        self._next = (slot + 1) % self.capacity
        self._count += 1

    def instant(
        self, name: str, ts: float, cat: str = "sim", args: Optional[Mapping[str, Any]] = None
    ) -> None:
        """An instantaneous marker (Chrome phase ``I``)."""
        self.emit(Event(name, cat, "I", ts, args=args))

    def counter(
        self, name: str, ts: float, values: Mapping[str, Any], cat: str = "probe"
    ) -> None:
        """A sampled counter set (Chrome phase ``C``): renders as graphs."""
        self.emit(Event(name, cat, "C", ts, args=dict(values)))

    def complete(
        self,
        name: str,
        ts: float,
        dur: float,
        cat: str = "sim",
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """A duration slice (Chrome phase ``X``)."""
        self.emit(Event(name, cat, "X", ts, dur=dur, args=args))

    # -- readback --------------------------------------------------------------

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    def events(self) -> List[Event]:
        """Recorded events, oldest first."""
        if self._count <= self.capacity:
            return [event for event in self._ring[: self._next] if event is not None]
        head = self._ring[self._next :]
        tail = self._ring[: self._next]
        return [event for event in head + tail if event is not None]

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events())

    def clear(self) -> None:
        self._ring = [None] * self.capacity
        self._next = 0
        self._count = 0
        self.dropped = 0
