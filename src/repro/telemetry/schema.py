"""Telemetry schema identity and artifact-shape validators.

Kept free of any intra-package (or wider ``repro``) imports, exactly
like :mod:`repro.checkpoint.schema`, so that low layers —
``sim.fingerprint`` folds the telemetry token into every config
fingerprint — can import it without touching the rest of the telemetry
machinery.

Bump :data:`TELEMETRY_SCHEMA_VERSION` whenever the *meaning* of an
event record or a time-series dump changes (a renamed field, a new
mandatory column, a re-unit'd timestamp): because the token
participates in ``config_fingerprint``, every result cache, warmup
store and ledger keyed on the old schema invalidates with it, so a
sweep can never silently reuse cells whose recorded trace artifacts no
longer parse.

The validators here are deliberately structural (field presence and
types, not semantics): they are what the ``trace-smoke`` CI job and the
exporter tests run against recorded artifacts.
"""

from __future__ import annotations

from typing import Any, List, Mapping

#: Version of every on-disk telemetry artifact layout (events JSONL,
#: Chrome trace export, time-series dumps).
TELEMETRY_SCHEMA_VERSION = 1

#: Schema tag stamped into artifact headers.
TELEMETRY_SCHEMA = f"repro.telemetry/v{TELEMETRY_SCHEMA_VERSION}"

#: Fields every event record must carry (the JSONL event log is one
#: such object per line after the header).
EVENT_REQUIRED_FIELDS = ("name", "cat", "ph", "ts")

#: Chrome ``trace_event`` phases this subsystem emits: instant,
#: counter, complete (with ``dur``) and metadata.
EVENT_PHASES = ("I", "C", "X", "M")


class TelemetrySchemaError(ValueError):
    """An artifact does not match the telemetry schema."""


def validate_event(event: Mapping[str, Any], where: str = "event") -> None:
    """Check one event record's required fields and types."""
    for field in EVENT_REQUIRED_FIELDS:
        if field not in event:
            raise TelemetrySchemaError(f"{where}: missing field {field!r}")
    if event["ph"] not in EVENT_PHASES:
        raise TelemetrySchemaError(
            f"{where}: unknown phase {event['ph']!r}; expected one of {EVENT_PHASES}"
        )
    if not isinstance(event["name"], str) or not isinstance(event["cat"], str):
        raise TelemetrySchemaError(f"{where}: name/cat must be strings")
    if not isinstance(event["ts"], (int, float)):
        raise TelemetrySchemaError(f"{where}: ts must be numeric")
    args = event.get("args")
    if args is not None and not isinstance(args, Mapping):
        raise TelemetrySchemaError(f"{where}: args must be a mapping when present")


def validate_header(header: Mapping[str, Any], where: str = "header") -> None:
    """Check an artifact header's schema stamp."""
    if header.get("schema") != TELEMETRY_SCHEMA:
        raise TelemetrySchemaError(
            f"{where}: schema {header.get('schema')!r} != {TELEMETRY_SCHEMA!r}"
        )
    if header.get("schema_version") != TELEMETRY_SCHEMA_VERSION:
        raise TelemetrySchemaError(
            f"{where}: schema_version {header.get('schema_version')!r} "
            f"!= {TELEMETRY_SCHEMA_VERSION}"
        )


def validate_chrome_trace(document: Mapping[str, Any]) -> int:
    """Validate a Chrome ``trace_event`` export; returns the event count.

    The exported document is the "JSON object format": a top-level
    object with a ``traceEvents`` array (loadable by Perfetto and
    ``about:tracing``) plus our schema stamp under ``otherData``.
    """
    events = document.get("traceEvents")
    if not isinstance(events, List):
        raise TelemetrySchemaError("chrome trace: traceEvents must be a list")
    other = document.get("otherData")
    if not isinstance(other, Mapping):
        raise TelemetrySchemaError("chrome trace: missing otherData header")
    validate_header(other, "chrome trace otherData")
    for position, event in enumerate(events):
        validate_event(event, f"traceEvents[{position}]")
        if "pid" not in event or "tid" not in event:
            raise TelemetrySchemaError(f"traceEvents[{position}]: missing pid/tid")
    return len(events)


def validate_timeseries(document: Mapping[str, Any]) -> int:
    """Validate a time-series JSON dump; returns the series count."""
    validate_header(document, "timeseries")
    series = document.get("series")
    if not isinstance(series, Mapping):
        raise TelemetrySchemaError("timeseries: series must be a mapping")
    for name, body in series.items():
        if not isinstance(body, Mapping):
            raise TelemetrySchemaError(f"timeseries {name!r}: body must be a mapping")
        times = body.get("t")
        values = body.get("v")
        if not isinstance(times, List) or not isinstance(values, List):
            raise TelemetrySchemaError(f"timeseries {name!r}: t/v must be lists")
        if len(times) != len(values):
            raise TelemetrySchemaError(
                f"timeseries {name!r}: {len(times)} timestamps vs {len(values)} values"
            )
    return len(series)
