"""Telemetry exporters: JSONL events, Chrome traces, time-series dumps.

Every artifact carries the schema stamp from :mod:`.schema` and is
written deterministically (sorted keys, no wall-clock fields) so two
recordings of the same simulation are byte-identical files.  Writers
share two conventions with the checkpoint store:

* every ``open()`` goes through :func:`repro.ioutil.atomic_write`
  (unique-tmp + rename), so a crash mid-export can never leave a
  truncated-but-schema-stamped artifact behind — exports are complete
  or absent;
* text handles use ``newline=""``, so the ``csv`` module's own
  ``\\r\\n`` handling (and everyone else's explicit ``\\n``) is not
  doubled by Windows text-mode translation, and artifacts stay
  byte-identical across platforms.

Artifacts per session:

* ``events.jsonl`` — header line then one event object per line; the
  cheap, grep-able form.
* ``TRACE_sim.json`` — Chrome ``trace_event`` "JSON object format",
  loadable in Perfetto / ``about:tracing``; counter events render as
  per-category graphs.
* ``timeseries.json`` / ``timeseries.csv`` — the probe series; the
  JSON form feeds the harness phase-plot figure, the CSV imports into
  anything.
"""

from __future__ import annotations

import csv
import json
import os
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..ioutil import atomic_write
from .schema import TELEMETRY_SCHEMA, TELEMETRY_SCHEMA_VERSION

if TYPE_CHECKING:  # layering: only type names, never runtime imports
    from .probes import TimeSeries
    from .session import Telemetry

#: Chrome trace pid for everything we emit (one logical process).
TRACE_PID = 1

#: Stable tid per event category, so Perfetto groups sim markers,
#: probe counters and sweep lifecycle onto separate tracks.
CATEGORY_TIDS = {"sim": 1, "probe": 2, "sweep": 3}
DEFAULT_TID = 9


def _header(kind: str, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    header: Dict[str, Any] = {
        "schema": TELEMETRY_SCHEMA,
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "kind": kind,
    }
    if meta:
        header["meta"] = dict(meta)
    return header


def write_events_jsonl(
    events: List[Any], path: str, meta: Optional[Dict[str, Any]] = None
) -> str:
    """Header line + one event per line."""
    with atomic_write(path, "w") as handle:
        handle.write(json.dumps(_header("events", meta), sort_keys=True) + "\n")
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
    return path


def read_events_jsonl(path: str) -> Dict[str, Any]:
    """Parse an events JSONL file into ``{"header": ..., "events": [...]}``."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty events file")
    return {
        "header": json.loads(lines[0]),
        "events": [json.loads(line) for line in lines[1:]],
    }


def chrome_trace_document(
    events: List[Any], meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Events as the Chrome trace "JSON object format" document."""
    trace_events: List[Dict[str, Any]] = []
    # Name the process and per-category tracks via metadata events.
    trace_events.append(
        {
            "name": "process_name",
            "cat": "__metadata",
            "ph": "M",
            "ts": 0,
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "repro-sim"},
        }
    )
    for cat, tid in sorted(CATEGORY_TIDS.items()):
        trace_events.append(
            {
                "name": "thread_name",
                "cat": "__metadata",
                "ph": "M",
                "ts": 0,
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": cat},
            }
        )
    for event in events:
        record = event.to_dict()
        record["pid"] = TRACE_PID
        record["tid"] = CATEGORY_TIDS.get(event.cat, DEFAULT_TID)
        trace_events.append(record)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": _header("chrome-trace", meta),
    }


def write_chrome_trace(
    events: List[Any], path: str, meta: Optional[Dict[str, Any]] = None
) -> str:
    document = chrome_trace_document(events, meta)
    with atomic_write(path, "w") as handle:
        json.dump(document, handle, sort_keys=True, indent=1)
        handle.write("\n")
    return path


def timeseries_document(
    series: Dict[str, "TimeSeries"], meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    document = _header("timeseries", meta)
    document["series"] = {
        name: track.to_dict() for name, track in sorted(series.items())
    }
    return document


def write_timeseries_json(
    series: Dict[str, "TimeSeries"], path: str, meta: Optional[Dict[str, Any]] = None
) -> str:
    with atomic_write(path, "w") as handle:
        json.dump(timeseries_document(series, meta), handle, sort_keys=True, indent=1)
        handle.write("\n")
    return path


def write_timeseries_csv(series: Dict[str, "TimeSeries"], path: str) -> str:
    """Long-form CSV: one ``series,unit,t,v`` row per sample.

    Emitted through the ``csv`` module over a ``newline=""`` handle
    (with ``\\n`` terminators, matching the historical byte layout):
    quoting is correct should a unit ever grow a comma, and Windows
    text-mode translation cannot double the line endings.
    """
    with atomic_write(path, "w") as handle:
        writer = csv.writer(handle, lineterminator="\n")
        writer.writerow(["series", "unit", "t", "v"])
        for name, track in sorted(series.items()):
            unit = track.unit
            for t, v in zip(track.t, track.v):
                writer.writerow([name, unit, t, v])
    return path


def export_session(
    session: "Telemetry", out_dir: str, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, str]:
    """Write every artifact for a session; returns artifact -> path."""
    os.makedirs(out_dir, exist_ok=True)
    events = session.tracer.events()
    series = session.series()
    if session.tracer.dropped:
        meta = dict(meta or {})
        meta["dropped_events"] = session.tracer.dropped
    return {
        "events": write_events_jsonl(events, os.path.join(out_dir, "events.jsonl"), meta),
        "chrome_trace": write_chrome_trace(
            events, os.path.join(out_dir, "TRACE_sim.json"), meta
        ),
        "timeseries_json": write_timeseries_json(
            series, os.path.join(out_dir, "timeseries.json"), meta
        ),
        "timeseries_csv": write_timeseries_csv(
            series, os.path.join(out_dir, "timeseries.csv")
        ),
    }


def summary_rows(document: Dict[str, Any]) -> List[List[str]]:
    """Table rows summarizing a time-series document (for the CLI)."""
    rows: List[List[str]] = []
    for name, body in sorted(document.get("series", {}).items()):
        values = body.get("v", [])
        unit = body.get("unit", "")
        if values:
            low, high = min(values), max(values)
            mean = sum(values) / len(values)
            rows.append(
                [
                    name,
                    unit,
                    str(len(values)),
                    f"{low:.4g}",
                    f"{mean:.4g}",
                    f"{high:.4g}",
                    f"{values[-1]:.4g}",
                ]
            )
        else:
            rows.append([name, unit, "0", "-", "-", "-", "-"])
    return rows
