"""Live sweep progress: a throttled, single-line stderr renderer.

Consumes the cell lifecycle events the suite runner fans out to its
observers and keeps one ``\\r``-rewritten status line current on
stderr.  Three properties make it safe to leave on by default:

* **TTY-gated** — when stderr is not a terminal (CI logs, pipes) the
  renderer writes nothing at all, so redirected output stays
  byte-identical with and without it.
* **Throttled** — redraws are rate-limited (wall clock is fine here:
  this is presentation, never a recorded artifact), so ten thousand
  fast cached cells cost a handful of writes.
* **Stream-only** — it owns no state beyond counters; the authoritative
  record of the same events is the ledger, not this line.
"""

from __future__ import annotations

import sys
from time import perf_counter
from typing import Any, Dict, Optional, TextIO


class LiveProgress:
    """Render sweep lifecycle events as one updating stderr line."""

    def __init__(
        self,
        total: int = 0,
        stream: Optional[TextIO] = None,
        min_interval: float = 0.1,
        enabled: Optional[bool] = None,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty and isatty())
        self.enabled = enabled
        self.total = total
        self.min_interval = min_interval
        self.counts: Dict[str, int] = {
            "queued": 0,
            "cached": 0,
            "started": 0,
            "retried": 0,
            "reclaimed": 0,
            "finished": 0,
            "failed": 0,
        }
        self.running = 0
        self._last_draw = 0.0
        self._line_width = 0

    # -- observer entry point --------------------------------------------------

    def __call__(self, record: Dict[str, Any]) -> None:
        """Consume one ledger record; non-lifecycle records are ignored."""
        if record.get("event") != "lifecycle":
            return
        phase = record.get("phase", "")
        if phase in self.counts:
            self.counts[phase] += 1
        if phase == "started":
            self.running += 1
        elif phase == "finished":
            self.running = max(0, self.running - 1)
            if not record.get("ok", True):
                self.counts["failed"] += 1
        self._draw(force=phase == "finished" and self.done >= self.total > 0)

    # -- rendering -------------------------------------------------------------

    @property
    def done(self) -> int:
        return self.counts["finished"] + self.counts["cached"]

    def _render(self) -> str:
        counts = self.counts
        parts = [f"sweep {self.done}/{self.total or '?'}"]
        parts.append(f"running {self.running}")
        if counts["cached"]:
            parts.append(f"cached {counts['cached']}")
        if counts["retried"]:
            parts.append(f"retried {counts['retried']}")
        if counts["reclaimed"]:
            # Farm sweeps only: cells taken over from an expired lease.
            parts.append(f"reclaimed {counts['reclaimed']}")
        if counts["failed"]:
            parts.append(f"failed {counts['failed']}")
        return " | ".join(parts)

    def _draw(self, force: bool = False) -> None:
        if not self.enabled:
            return
        now = perf_counter()
        if not force and now - self._last_draw < self.min_interval:
            return
        self._last_draw = now
        line = self._render()
        pad = " " * max(0, self._line_width - len(line))
        self.stream.write(f"\r{line}{pad}")
        self.stream.flush()
        self._line_width = len(line)

    def close(self) -> None:
        """Finish the line so later output starts on a fresh row."""
        if not self.enabled:
            return
        self._draw(force=True)
        self.stream.write("\n")
        self.stream.flush()
