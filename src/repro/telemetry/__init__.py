"""repro.telemetry — low-overhead tracing, probes and observability.

Three pieces, composable but independent:

* :mod:`.tracer` — a ring-buffer event recorder whose disabled path is
  one attribute read; drivers skip it entirely when no session is
  active, keeping the simulation hot path bit-identical.
* :mod:`.probes` — registered read-only probes over stateful components
  (cache, DRAM, SPP, PPF weights, core), sampled every N accesses into
  typed time-series.
* :mod:`.export` — deterministic JSONL / Chrome-trace / CSV / JSON
  artifact writers, validated by :mod:`.schema`.

:class:`Telemetry` (in :mod:`.session`) ties them together; the suite
runner separately streams cell lifecycle events to observers like
:class:`~.live.LiveProgress`.
"""

from .live import LiveProgress
from .probes import CallableProbe, Probe, ProbeSet, TimeSeries
from .schema import (
    TELEMETRY_SCHEMA,
    TELEMETRY_SCHEMA_VERSION,
    TelemetrySchemaError,
    validate_chrome_trace,
    validate_timeseries,
)
from .session import _UNSET, Telemetry, activate, current_session, resolve
from .tracer import Event, Tracer

__all__ = [
    "Event",
    "Tracer",
    "Probe",
    "CallableProbe",
    "ProbeSet",
    "TimeSeries",
    "Telemetry",
    "activate",
    "current_session",
    "resolve",
    "_UNSET",
    "LiveProgress",
    "TELEMETRY_SCHEMA",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetrySchemaError",
    "validate_chrome_trace",
    "validate_timeseries",
]
