"""Telemetry sessions: the handle that turns tracing on for a run.

A :class:`Telemetry` session bundles one :class:`~.tracer.Tracer` with
the probe cadence and every :class:`~.probes.ProbeSet` attached during
its lifetime.  Drivers accept a session through an explicit
``telemetry=`` argument; when the caller passes nothing, they fall back
to the process-wide *active* session installed by :func:`activate` —
which is how the CLI's ``--trace`` flag reaches ``run_single_core``
without threading a parameter through every layer.

The ``_UNSET`` sentinel makes the fallback explicit: ``telemetry=None``
means "definitely no telemetry" (the sweep worker uses this so cached
cell results are never polluted by an ambient session), while an
omitted argument means "use the active session if any".
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from .probes import ProbeSet, TimeSeries
from .tracer import Tracer

#: Sentinel distinguishing "argument omitted" from ``telemetry=None``.
_UNSET: Any = object()


class Telemetry:
    """One recording session: a tracer plus attached probe sets.

    ``probe_every`` is the sampling cadence in trace records; drivers
    read it to decide how often to call ``ProbeSet.sample``.  A session
    constructed with ``enabled=False`` is a recognized no-op — drivers
    treat it exactly like no session at all, which is what the
    disabled-overhead benchmark measures.
    """

    def __init__(
        self,
        probe_every: int = 1000,
        capacity: int = 65536,
        enabled: bool = True,
    ) -> None:
        if probe_every <= 0:
            raise ValueError("probe_every must be positive")
        self.probe_every = probe_every
        self.enabled = enabled
        self.tracer = Tracer(capacity=capacity, enabled=enabled)
        self.probe_sets: Dict[str, ProbeSet] = {}

    # -- probe wiring ----------------------------------------------------------

    def attach(self, label: str, sim: Any) -> ProbeSet:
        """Discover and register every applicable probe for ``sim``.

        Labels deduplicate automatically (``run``, ``run-2``, ...) so a
        session can span several simulations — a warmup/resume pair, or
        sequential runs under one CLI invocation.
        """
        unique = label
        suffix = 2
        while unique in self.probe_sets:
            unique = f"{label}-{suffix}"
            suffix += 1
        probe_set = ProbeSet.discover(sim)
        self.probe_sets[unique] = probe_set
        return probe_set

    def series(self) -> Dict[str, TimeSeries]:
        """Every recorded series, merged across probe sets.

        With a single probe set, series keep their bare names
        (``cache.l2_mpki``); with several, names are scoped by the
        attachment label to stay collision-free.
        """
        if len(self.probe_sets) == 1:
            (probe_set,) = self.probe_sets.values()
            return dict(probe_set.series)
        merged: Dict[str, TimeSeries] = {}
        for label, probe_set in self.probe_sets.items():
            for name, track in probe_set.series.items():
                merged[f"{label}/{name}"] = track
        return merged

    # -- export ----------------------------------------------------------------

    def export(self, out_dir: str, meta: Optional[Dict[str, Any]] = None) -> Dict[str, str]:
        """Write every artifact for this session; returns name -> path."""
        from .export import export_session

        return export_session(self, out_dir, meta)


#: The process-wide active session (``None`` when not recording).
_ACTIVE: Optional[Telemetry] = None


def current_session() -> Optional[Telemetry]:
    """The active telemetry session, or ``None``."""
    return _ACTIVE


def resolve(telemetry: Any) -> Optional[Telemetry]:
    """Normalize a driver's ``telemetry=`` argument to a usable session.

    ``_UNSET`` → the active session; ``None`` or a disabled session →
    ``None`` (drivers then take their untouched fast path).
    """
    if telemetry is _UNSET:
        telemetry = _ACTIVE
    if telemetry is None or not telemetry.enabled:
        return None
    return telemetry


@contextmanager
def activate(session: Telemetry) -> Iterator[Telemetry]:
    """Install ``session`` as the process-wide active session."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = previous
