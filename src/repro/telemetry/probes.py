"""Periodic probes: typed time-series sampled from live components.

A probe is a tiny read-only adapter over one stateful component: its
``observe()`` returns a flat ``{signal: value}`` mapping computed from
the component's *current* state.  A :class:`ProbeSet` owns a collection
of probes, samples them every N accesses into per-signal
:class:`TimeSeries`, and mirrors each sample onto the tracer as a
Chrome ``C`` (counter) event so phase behaviour shows up in Perfetto.

Probes are **registered components** (``registry`` kind ``"probe"``):
each factory takes the simulation object and returns a probe — or
``None`` when the sim lacks the structures that probe reads (the SPP
probe on a ``none``-prefetcher run, say).  Discovery is duck-typed so
this package never imports the sim layer; layering stays
telemetry → (registry, stats) only.

The sampling contract is the same as the tracer's: probes *read*,
never mutate.  Every ``observe()`` below goes out of its way to use
side-effect-free accessors (``probe``-style cache walks, pure counter
arithmetic) so attaching probes cannot perturb a bit-identical run.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..registry import names as registry_names
from ..registry import create as registry_create
from ..registry import register
from ..stats import GroupAdapter
from .tracer import Tracer


class TimeSeries:
    """One sampled signal: parallel timestamp/value lists."""

    __slots__ = ("name", "unit", "t", "v")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.t: List[float] = []
        self.v: List[float] = []

    def append(self, t: float, value: float) -> None:
        self.t.append(t)
        self.v.append(value)

    def __len__(self) -> int:
        return len(self.v)

    def summary(self) -> Dict[str, float]:
        """Count/min/max/mean/last aggregate of the sampled values."""
        values = self.v
        if not values:
            return {"count": 0, "min": 0.0, "max": 0.0, "mean": 0.0, "last": 0.0}
        return {
            "count": len(values),
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
            "last": values[-1],
        }

    def to_dict(self) -> Dict[str, Any]:
        return {"unit": self.unit, "t": list(self.t), "v": list(self.v)}


class Probe:
    """Base class for component probes.

    Subclasses set ``name`` (the series prefix) and implement
    ``observe()`` returning ``{signal: value}``; units per signal are
    declared in ``units`` and ride into the exported series.
    """

    name = "probe"
    units: Dict[str, str] = {}

    def observe(self) -> Dict[str, float]:
        raise NotImplementedError


class CallableProbe(Probe):
    """Wrap a plain callable as a probe (handy in tests)."""

    def __init__(self, name: str, fn: Callable[[], Dict[str, float]]) -> None:
        self.name = name
        self._fn = fn

    def observe(self) -> Dict[str, float]:
        return self._fn()


class ProbeSet:
    """A sampled collection of probes feeding typed time-series.

    ``sample()`` is the only mutating entry point; it appends one value
    per signal into that signal's series and mirrors the probe's full
    reading onto the tracer as one counter event.  Mounted into a stats
    tree via :meth:`stats_adapter`, the set contributes
    ``telemetry.probe_samples`` / ``telemetry.series`` scalars to every
    RunResult snapshot — the footprint is deliberately tiny so traced
    and untraced snapshots differ only under the ``telemetry.`` scope.
    """

    def __init__(self, probes: Optional[List[Probe]] = None) -> None:
        self.probes: List[Probe] = list(probes or [])
        self.series: Dict[str, TimeSeries] = {}
        self.samples = 0

    @classmethod
    def discover(cls, sim: Any) -> "ProbeSet":
        """Build every registered probe that applies to ``sim``.

        Factories registered under kind ``"probe"`` are called with the
        simulation object; a ``None`` return means "not applicable"
        (e.g. the PPF probe on a plain-SPP run) and is skipped.
        """
        probes: List[Probe] = []
        for name in registry_names("probe"):
            probe = registry_create("probe", name, sim)
            if probe is not None:
                probes.append(probe)
        return cls(probes)

    def sample(self, t: float, tracer: Optional[Tracer] = None) -> None:
        """Take one reading of every probe at timestamp ``t``."""
        self.samples += 1
        series = self.series
        for probe in self.probes:
            values = probe.observe()
            prefix = probe.name
            units = probe.units
            for key, value in values.items():
                full = f"{prefix}.{key}"
                track = series.get(full)
                if track is None:
                    track = TimeSeries(full, units.get(key, ""))
                    series[full] = track
                track.append(t, value)
            if tracer is not None and tracer.enabled:
                tracer.counter(prefix, t, values)

    def stats_adapter(self) -> GroupAdapter:
        """A mountable stats group: sample/series counts only.

        Snapshot keys are deliberately restricted to bookkeeping scalars
        (never probe readings) so the golden-stats identity tests can
        strip the whole ``telemetry.`` scope and compare the rest
        key-for-key.
        """

        def snapshot():
            return {"probe_samples": self.samples, "series": len(self.series)}

        def reset():
            # Series are artifacts, not statistics: the warmup-boundary
            # reset must not erase recorded samples.
            return None

        return GroupAdapter(snapshot, reset)

    def to_dict(self) -> Dict[str, Any]:
        return {name: track.to_dict() for name, track in sorted(self.series.items())}


# -- registered probes ---------------------------------------------------------


class CacheProbe(Probe):
    """L2 demand MPKI plus L2/LLC occupancy."""

    name = "cache"
    units = {"l2_mpki": "misses/kinst", "l2_occupancy": "fraction", "llc_occupancy": "fraction"}

    def __init__(self, core: Any, l2: Any, llc: Any) -> None:
        self._core = core
        self._l2 = l2
        self._llc = llc

    def observe(self) -> Dict[str, float]:
        instructions = self._core.measured_instructions
        misses = self._l2.stats.demand_misses
        return {
            "l2_mpki": (1000.0 * misses / instructions) if instructions > 0 else 0.0,
            "l2_occupancy": self._l2.occupancy(),
            "llc_occupancy": self._llc.occupancy(),
        }


@register("probe", "cache")
def _cache_probe(sim: Any) -> Optional[Probe]:
    hierarchy = getattr(sim, "hierarchy", None)
    core = getattr(sim, "core", None)
    if hierarchy is None or core is None:
        return None
    return CacheProbe(core, hierarchy.l2[0], hierarchy.llc)


class DRAMProbe(Probe):
    """Row-buffer locality and queueing pressure at the memory controller."""

    name = "dram"
    units = {"row_hit_rate": "fraction", "mean_queue_delay": "cycles", "accesses": "count"}

    def __init__(self, dram: Any) -> None:
        self._dram = dram

    def observe(self) -> Dict[str, float]:
        stats = self._dram.stats
        return {
            "row_hit_rate": stats.row_hit_rate,
            "mean_queue_delay": stats.mean_queue_delay,
            "accesses": float(stats.accesses),
        }


@register("probe", "dram")
def _dram_probe(sim: Any) -> Optional[Probe]:
    hierarchy = getattr(sim, "hierarchy", None)
    if hierarchy is None or not hasattr(hierarchy, "dram"):
        return None
    return DRAMProbe(hierarchy.dram)


def _find_spp(prefetcher: Any) -> Optional[Any]:
    """The SPP engine behind a prefetcher, if any (duck-typed).

    PPF wraps its SPP as ``.underlying``; a bare SPP exposes the
    summary itself; anything else has no SPP state to probe.
    """
    if hasattr(prefetcher, "confidence_summary"):
        return prefetcher
    underlying = getattr(prefetcher, "underlying", None)
    if underlying is not None and hasattr(underlying, "confidence_summary"):
        return underlying
    return None


class SPPProbe(Probe):
    """SPP internals: alpha, table occupancy and confidence shape."""

    name = "spp"
    units = {
        "alpha": "percent",
        "pattern_entries": "count",
        "signature_entries": "count",
        "mean_confidence": "percent",
        "max_confidence": "percent",
    }

    def __init__(self, spp: Any) -> None:
        self._spp = spp

    def observe(self) -> Dict[str, float]:
        spp = self._spp
        confidence = spp.confidence_summary()
        return {
            "alpha": float(spp.alpha_percent),
            "pattern_entries": float(spp.pattern_entry_count()),
            "signature_entries": float(spp.signature_entry_count()),
            "mean_confidence": confidence["mean_confidence"],
            "max_confidence": confidence["max_confidence"],
        }


@register("probe", "spp")
def _spp_probe(sim: Any) -> Optional[Probe]:
    spp = _find_spp(getattr(sim, "prefetcher", None))
    if spp is None:
        return None
    return SPPProbe(spp)


class PPFProbe(Probe):
    """Perceptron-filter health: weight magnitudes, saturation, decisions."""

    name = "ppf"

    def __init__(self, ppf_filter: Any) -> None:
        self._filter = ppf_filter

    def observe(self) -> Dict[str, float]:
        ppf_filter = self._filter
        out: Dict[str, float] = {}
        for feature, metrics in ppf_filter.weight_summary().items():
            out[f"weight_abs_mean.{feature}"] = metrics["abs_mean"]
            out[f"weight_saturation.{feature}"] = metrics["saturation"]
        stats = ppf_filter.stats
        inferences = stats.inferences
        out["accept_rate"] = stats.accept_rate
        out["reject_rate"] = (stats.rejected / inferences) if inferences else 0.0
        return out


@register("probe", "ppf")
def _ppf_probe(sim: Any) -> Optional[Probe]:
    ppf_filter = getattr(getattr(sim, "prefetcher", None), "filter", None)
    if ppf_filter is None or not hasattr(ppf_filter, "weight_summary"):
        return None
    return PPFProbe(ppf_filter)


class PythiaProbe(Probe):
    """Pythia's learning health: Q saturation, vault churn, reward mix."""

    name = "pythia"
    units = {
        "mean_abs_q": "reward",
        "q_saturation": "fraction",
        "vault_occupancy": "fraction",
        "eq_occupancy": "fraction",
        "reward_accurate_timely_frac": "fraction",
        "reward_accurate_late_frac": "fraction",
        "reward_inaccurate_frac": "fraction",
        "reward_no_prefetch_frac": "fraction",
    }

    def __init__(self, pythia: Any) -> None:
        self._pythia = pythia

    def observe(self) -> Dict[str, float]:
        return self._pythia.qvalue_summary()


@register("probe", "pythia")
def _pythia_probe(sim: Any) -> Optional[Probe]:
    prefetcher = getattr(sim, "prefetcher", None)
    if hasattr(prefetcher, "qvalue_summary"):
        return PythiaProbe(prefetcher)
    underlying = getattr(prefetcher, "underlying", None)
    if hasattr(underlying, "qvalue_summary"):
        return PythiaProbe(underlying)
    return None


class FilterSeamProbe(Probe):
    """Accept/reject flow through a perceptron filter, labelled per
    inner prefetcher (``filter.<inner>.*``) so cross-product sweeps can
    compare how the same filter treats different candidate streams."""

    units = {"accepts": "count", "rejects": "count", "accept_rate": "fraction"}

    def __init__(self, inner: str, perceptron: Any) -> None:
        self.name = f"filter.{inner}"
        self._perceptron = perceptron

    def observe(self) -> Dict[str, float]:
        stats = self._perceptron.stats
        return {
            "accepts": float(stats.accepted_l2 + stats.accepted_llc),
            "rejects": float(stats.rejected),
            "accept_rate": stats.accept_rate,
        }


@register("probe", "filter_seam")
def _filter_seam_probe(sim: Any) -> Optional[Probe]:
    prefetcher = getattr(sim, "prefetcher", None)
    perceptron = getattr(prefetcher, "filter", None)
    if perceptron is None or not hasattr(perceptron, "stats"):
        return None
    inner = getattr(prefetcher, "inner_name", None)
    if inner is None:
        underlying = getattr(prefetcher, "underlying", None)
        inner = getattr(underlying, "name", None) if underlying is not None else None
    if inner is None:
        inner = "self"  # a prefetcher filtering its own candidates
    return FilterSeamProbe(inner, perceptron)


class CoreProbe(Probe):
    """ROB-window occupancy and measurement-window IPC."""

    name = "core"
    units = {"outstanding_loads": "count", "ipc": "inst/cycle", "instructions": "count"}

    def __init__(self, core: Any) -> None:
        self._core = core

    def observe(self) -> Dict[str, float]:
        core = self._core
        return {
            "outstanding_loads": float(core.outstanding_loads),
            "ipc": core.measured_ipc,
            "instructions": float(core.measured_instructions),
        }


@register("probe", "core")
def _core_probe(sim: Any) -> Optional[Probe]:
    core = getattr(sim, "core", None)
    if core is None or not hasattr(core, "measured_ipc"):
        return None
    return CoreProbe(core)
