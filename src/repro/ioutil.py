"""Shared atomic file publication (the unique-tmp + rename idiom).

Three subsystems grew the same convention independently — the suite
runner's result cache, the checkpoint store and (since this module) the
telemetry exporters and trace converter: writers stage into a sibling
temp file whose name carries the pid plus a process-local counter, then
publish with ``Path.replace``.  Readers therefore only ever observe
complete files, concurrent writers racing on one path cannot interleave,
and a crash mid-write leaves at worst a ``*.tmp`` orphan, never a
truncated artifact that still carries a valid-looking schema header.

Text-mode writes default to ``newline=""`` so line endings are exactly
the ``\\n`` the writer emits on every platform — Windows' text-mode
``\\n`` → ``\\r\\n`` translation otherwise doubles line endings when the
``csv`` module (which writes ``\\r\\n`` itself) is involved, and makes
"deterministic, byte-identical artifacts" platform-dependent for
everything else.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

#: Distinguishes writers within one process; the pid distinguishes
#: processes sharing a directory.
_TMP_COUNTER = itertools.count()


def unique_tmp(path: Path | str) -> Path:
    """A collision-free temporary sibling of ``path``."""
    path = Path(path)
    return path.with_name(f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp")


@contextmanager
def atomic_write(
    path: Path | str,
    mode: str = "w",
    encoding: str | None = "utf-8",
    newline: str | None = "",
) -> Iterator[IO]:
    """Open a staging file that replaces ``path`` only on clean exit.

    Any exception (including ``KeyboardInterrupt``) unlinks the staging
    file and re-raises, so failed writes leave no artifact at all —
    the previous content of ``path``, if any, survives untouched.
    Binary modes ignore ``encoding``/``newline``.
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_write is write-only, got mode {mode!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = unique_tmp(path)
    binary = "b" in mode
    try:
        with open(
            tmp,
            mode,
            encoding=None if binary else encoding,
            newline=None if binary else newline,
        ) as handle:
            yield handle
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path: Path | str, blob: bytes) -> Path:
    """Atomically publish ``blob`` at ``path``."""
    path = Path(path)
    with atomic_write(path, "wb") as handle:
        handle.write(blob)
    return path


def atomic_write_text(path: Path | str, text: str, encoding: str = "utf-8") -> Path:
    """Atomically publish ``text`` at ``path`` (``newline=""`` semantics)."""
    path = Path(path)
    with atomic_write(path, "w", encoding=encoding) as handle:
        handle.write(text)
    return path


def exclusive_create(path: Path | str, text: str, encoding: str = "utf-8") -> bool:
    """Create ``path`` with ``text`` iff it does not exist yet.

    The create itself is the atomic primitive (``O_CREAT | O_EXCL``):
    exactly one of any number of concurrent callers — across processes
    and across hosts sharing a filesystem — wins and writes the file.
    This is the *claim* half of the farm queue's claim/lease protocol;
    the *takeover* half (replacing an expired lease) goes through
    :func:`atomic_write`, whose rename is the last-writer-wins primitive.

    Returns ``True`` when this caller created the file, ``False`` when
    it already existed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
    except FileExistsError:
        return False
    try:
        os.write(fd, text.encode(encoding))
    finally:
        os.close(fd)
    return True


def append_line(path: Path | str, line: str, encoding: str = "utf-8") -> None:
    """Append one ``\\n``-terminated line to ``path``.

    Uses a single ``O_APPEND`` write, so concurrent appenders (the farm
    queue's event log is shared by every worker) never interleave within
    a line as long as each line stays under the platform's atomic append
    size (POSIX guarantees ``PIPE_BUF`` ≥ 512 bytes; Linux gives 4096 —
    lifecycle records are well under either).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = (line.rstrip("\n") + "\n").encode(encoding)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, payload)
    finally:
        os.close(fd)
