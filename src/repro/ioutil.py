"""Shared atomic file publication (the unique-tmp + rename idiom).

Three subsystems grew the same convention independently — the suite
runner's result cache, the checkpoint store and (since this module) the
telemetry exporters and trace converter: writers stage into a sibling
temp file whose name carries the pid plus a process-local counter, then
publish with ``Path.replace``.  Readers therefore only ever observe
complete files, concurrent writers racing on one path cannot interleave,
and a crash mid-write leaves at worst a ``*.tmp`` orphan, never a
truncated artifact that still carries a valid-looking schema header.

Text-mode writes default to ``newline=""`` so line endings are exactly
the ``\\n`` the writer emits on every platform — Windows' text-mode
``\\n`` → ``\\r\\n`` translation otherwise doubles line endings when the
``csv`` module (which writes ``\\r\\n`` itself) is involved, and makes
"deterministic, byte-identical artifacts" platform-dependent for
everything else.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

#: Distinguishes writers within one process; the pid distinguishes
#: processes sharing a directory.
_TMP_COUNTER = itertools.count()


def unique_tmp(path: Path | str) -> Path:
    """A collision-free temporary sibling of ``path``."""
    path = Path(path)
    return path.with_name(f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp")


@contextmanager
def atomic_write(
    path: Path | str,
    mode: str = "w",
    encoding: str | None = "utf-8",
    newline: str | None = "",
) -> Iterator[IO]:
    """Open a staging file that replaces ``path`` only on clean exit.

    Any exception (including ``KeyboardInterrupt``) unlinks the staging
    file and re-raises, so failed writes leave no artifact at all —
    the previous content of ``path``, if any, survives untouched.
    Binary modes ignore ``encoding``/``newline``.
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_write is write-only, got mode {mode!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = unique_tmp(path)
    binary = "b" in mode
    try:
        with open(
            tmp,
            mode,
            encoding=None if binary else encoding,
            newline=None if binary else newline,
        ) as handle:
            yield handle
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path: Path | str, blob: bytes) -> Path:
    """Atomically publish ``blob`` at ``path``."""
    path = Path(path)
    with atomic_write(path, "wb") as handle:
        handle.write(blob)
    return path


def atomic_write_text(path: Path | str, text: str, encoding: str = "utf-8") -> Path:
    """Atomically publish ``text`` at ``path`` (``newline=""`` semantics)."""
    path = Path(path)
    with atomic_write(path, "w", encoding=encoding) as handle:
        handle.write(text)
    return path
