"""Multi-core simulation driver (§5.3 multi-core methodology).

``cores`` instances of the workload mix run concurrently: private
L1/L2 and one prefetcher per core, shared LLC and DRAM channels.  Cores
advance in global cycle order, so they genuinely contend for LLC
capacity and DRAM bandwidth — the effect that makes filtering useless
prefetches worth more in multi-core than single-core (§6.2).

Methodology mirrors the paper: all cores warm up, stats reset, then each
core is measured over its next ``measure_records`` loads.  Cores that
finish early keep executing (their trace replays) so the contention on
the still-measuring cores stays realistic; the replayed work is not
counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..cpu.o3core import O3Core
from ..cpu.trace import TraceRecord
from ..memory.hierarchy import MemoryHierarchy
from ..prefetchers.base import Prefetcher
from ..workloads.mixes import WorkloadMix
from ..workloads.spec2017 import WorkloadSpec
from .config import SimConfig
from .single_core import make_prefetcher


@dataclass
class CoreOutcome:
    """Per-core measured numbers within a mix run.

    Built from the core's private scope of the hierarchy stats tree
    (``core<i>.*``), captured at the moment the core finishes its
    measured records; the full scoped snapshot rides along in ``stats``.
    """

    workload: str
    instructions: int
    cycles: int
    l2_misses: int
    prefetches_issued: int
    prefetches_useful: int
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


@dataclass
class MultiCoreResult:
    """Outcome of one mix under one prefetching scheme."""

    mix_name: str
    prefetcher: str
    cores: List[CoreOutcome] = field(default_factory=list)

    @property
    def per_core_ipc(self) -> List[float]:
        return [core.ipc for core in self.cores]

    @property
    def total_useful(self) -> int:
        return sum(core.prefetches_useful for core in self.cores)

    @property
    def total_issued(self) -> int:
        return sum(core.prefetches_issued for core in self.cores)


def _endless_trace(
    workload: WorkloadSpec, chunk: int, seed: int, core: int
) -> Iterator[TraceRecord]:
    """Replay the workload forever (fresh seed per lap) for contention.

    Each core's addresses are relocated into a disjoint physical region
    (as the OS would map separate processes) — otherwise two copies of
    the same benchmark would constructively share the LLC.
    """
    offset = core << 44
    lap_seed = seed
    while True:
        for rec in workload.trace(chunk, seed=lap_seed):
            yield TraceRecord(pc=rec.pc, addr=rec.addr + offset, bubble=rec.bubble)
        lap_seed += 1


def run_multi_core(
    mix: WorkloadMix,
    prefetcher: str,
    config: Optional[SimConfig] = None,
    seed: int = 1,
) -> MultiCoreResult:
    """Run one workload mix with the same prefetching scheme on every core."""
    cores = mix.cores
    config = config or SimConfig.multicore(cores)
    prefetchers: List[Prefetcher] = [make_prefetcher(prefetcher) for _ in range(cores)]
    hierarchy = MemoryHierarchy(
        num_cores=cores,
        config=config.hierarchy,
        dram_config=config.dram,
        prefetchers=prefetchers,
    )
    o3cores = [O3Core(i, hierarchy, config.core) for i in range(cores)]
    chunk = config.warmup_records + config.measure_records
    traces = [
        _endless_trace(spec, chunk, seed + i, core=i)
        for i, spec in enumerate(mix.workloads)
    ]
    steps = [0] * cores

    # Phase 1: warm every core up, in cycle order.
    while any(steps[i] < config.warmup_records for i in range(cores)):
        i = min(
            (i for i in range(cores) if steps[i] < config.warmup_records),
            key=lambda i: o3cores[i].cycle,
        )
        o3cores[i].step(next(traces[i]))
        steps[i] += 1

    hierarchy.reset_stats()
    for core in o3cores:
        core.begin_measurement()
    steps = [0] * cores
    outcomes: List[Optional[CoreOutcome]] = [None] * cores

    # Phase 2: measure; finished cores keep running (replay) so the
    # contention seen by still-measuring cores stays realistic.
    while any(outcome is None for outcome in outcomes):
        i = min(range(cores), key=lambda i: o3cores[i].cycle)
        o3cores[i].step(next(traces[i]))
        steps[i] += 1
        if outcomes[i] is None and steps[i] >= config.measure_records:
            o3cores[i].drain()
            result = o3cores[i].result()
            scoped = hierarchy.core_snapshot(i)
            outcomes[i] = CoreOutcome(
                workload=mix.workloads[i].name,
                instructions=result.instructions,
                cycles=result.cycles,
                l2_misses=int(scoped["l2.demand_misses"]),
                prefetches_issued=int(scoped["prefetcher.prefetch.issued"]),
                prefetches_useful=int(scoped["prefetcher.prefetch.useful"]),
                stats=scoped,
            )

    return MultiCoreResult(
        mix_name=mix.name,
        prefetcher=prefetcher,
        cores=[outcome for outcome in outcomes if outcome is not None],
    )
