"""Multi-core simulation driver (§5.3 multi-core methodology).

``cores`` instances of the workload mix run concurrently: private
L1/L2 and one prefetcher per core, shared LLC and DRAM channels.  Cores
advance in global cycle order, so they genuinely contend for LLC
capacity and DRAM bandwidth — the effect that makes filtering useless
prefetches worth more in multi-core than single-core (§6.2).

Methodology mirrors the paper: all cores warm up, stats reset, then each
core is measured over its next ``measure_records`` loads.  Cores that
finish early keep executing (their trace replays) so the contention on
the still-measuring cores stays realistic; the replayed work is not
counted.

Like the single-core driver, every phase advances through the engine
seam (``config.engine``): the scalar engine runs the extracted
record-at-a-time loop (heap-scheduled, same picks), the batched engine
runs cores in cycle quanta over fused per-core kernels — see
:mod:`repro.engine.multi_core` for the schedule-preservation argument.
Both are bit-identical, checkpointable at any quantum boundary, and
telemetry probes sample at ``probe_every``-aligned record counts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..checkpoint import (
    KIND_MULTI_CORE,
    Snapshot,
    SnapshotError,
    SnapshotStore,
    load_snapshot,
    save_snapshot,
)
from ..cpu.o3core import O3Core
from ..cpu.trace import TraceRecord
from ..engine import make_engine
from ..memory.hierarchy import MemoryHierarchy
from ..prefetchers.base import Prefetcher
from ..telemetry.probes import ProbeSet
from ..telemetry.session import _UNSET, Telemetry
from ..telemetry.session import resolve as _resolve_telemetry
from ..workloads.mixes import WorkloadMix
from ..workloads.spec2017 import WorkloadSpec
from .config import SimConfig
from .fingerprint import fingerprint_digest
from .single_core import make_prefetcher


@dataclass
class CoreOutcome:
    """Per-core measured numbers within a mix run.

    Built from the core's private scope of the hierarchy stats tree
    (``core<i>.*``), captured at the moment the core finishes its
    measured records; the full scoped snapshot rides along in ``stats``.
    """

    workload: str
    instructions: int
    cycles: int
    l2_misses: int
    prefetches_issued: int
    prefetches_useful: int
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


@dataclass
class MultiCoreResult:
    """Outcome of one mix under one prefetching scheme."""

    mix_name: str
    prefetcher: str
    cores: List[CoreOutcome] = field(default_factory=list)

    @property
    def per_core_ipc(self) -> List[float]:
        return [core.ipc for core in self.cores]

    @property
    def total_useful(self) -> int:
        return sum(core.prefetches_useful for core in self.cores)

    @property
    def total_issued(self) -> int:
        return sum(core.prefetches_issued for core in self.cores)


class _EndlessTrace:
    """Replay the workload forever (fresh seed per lap) for contention.

    Each core's addresses are relocated into a disjoint physical region
    (as the OS would map separate processes) — otherwise two copies of
    the same benchmark would constructively share the LLC.  Iteration is
    record-for-record identical to the generator this class replaced;
    the class form exists so the lap position can be snapshotted.

    ``_pending`` holds at most one *raw* (un-relocated) record that was
    pulled from the stream but never simulated: the batched engine's
    run-ahead can complete a measurement while a suspended core still
    holds a just-pulled record the scalar schedule never reached.  It is
    replayed before the stream resumes, and it rides along in snapshots,
    so a post-completion checkpoint round-trips exactly.  The scalar
    engine never parks anything here.
    """

    def __init__(self, workload: WorkloadSpec, chunk: int, seed: int, core: int) -> None:
        self._workload = workload
        self._chunk = chunk
        self._offset = core << 44
        self.lap_seed = seed
        self._stream = workload.trace(chunk, seed=seed)
        self._it = iter(self._stream)
        self._pending: Optional[TraceRecord] = None

    def __iter__(self) -> "_EndlessTrace":
        return self

    def __next__(self) -> TraceRecord:
        rec = self._pending
        if rec is not None:
            self._pending = None
        else:
            try:
                rec = next(self._it)
            except StopIteration:
                self.lap_seed += 1
                self._stream = self._workload.trace(self._chunk, seed=self.lap_seed)
                self._it = iter(self._stream)
                rec = next(self._it)
        return TraceRecord(pc=rec.pc, addr=rec.addr + self._offset, bubble=rec.bubble)

    def state_dict(self) -> dict:
        stream_state = getattr(self._stream, "state_dict", None)
        if stream_state is None:
            raise SnapshotError(
                f"trace of workload {self._workload.name!r} is not checkpointable"
            )
        pending = self._pending
        return {
            "lap_seed": self.lap_seed,
            "stream": stream_state(),
            "pending": None
            if pending is None
            else [pending.pc, pending.addr, pending.bubble],
        }

    def load_state(self, state: dict) -> None:
        lap_seed = int(state["lap_seed"])
        if lap_seed != self.lap_seed:
            self.lap_seed = lap_seed
            self._stream = self._workload.trace(self._chunk, seed=lap_seed)
            self._it = iter(self._stream)
        self._stream.load_state(state["stream"])
        pending = state["pending"]
        self._pending = (
            None
            if pending is None
            else TraceRecord(pc=pending[0], addr=pending[1], bubble=pending[2])
        )


def multi_core_warmup_digest(
    mix: WorkloadMix, prefetcher: str, config: SimConfig, seed: int
) -> str:
    """Content address of a mix's warmup-boundary snapshot.

    Unlike the single-core key, ``measure_records`` stays in: the warmup
    phase interleaves cores by cycle order over laps of length
    ``warmup + measure``, so the measurement length shapes warmup state.
    """
    token = json.dumps(
        [
            "warmup-mc",
            mix.name,
            [spec.name for spec in mix.workloads],
            prefetcher,
            fingerprint_digest(config),
            seed,
        ]
    )
    return hashlib.sha256(token.encode("utf-8")).hexdigest()[:32]


class MultiCoreSim:
    """One mix simulation with explicit phases and snapshot support.

    ``state_dict()`` is valid at any record boundary of *either* phase:
    warmup snapshots capture the reusable warmed state, and — since the
    per-core measurement bookkeeping (``outcomes``) became sim state —
    mid-measurement snapshots restore to the exact record, captured
    outcomes included, under either engine.
    """

    def __init__(
        self,
        mix: WorkloadMix,
        prefetcher: str,
        config: Optional[SimConfig] = None,
        seed: int = 1,
    ) -> None:
        cores = mix.cores
        self.mix = mix
        self.prefetcher_name = prefetcher
        self.config = config or SimConfig.multicore(cores)
        self.seed = seed
        self.prefetchers: List[Prefetcher] = [
            make_prefetcher(prefetcher) for _ in range(cores)
        ]
        self.hierarchy = MemoryHierarchy(
            num_cores=cores,
            config=self.config.hierarchy,
            dram_config=self.config.dram,
            prefetchers=self.prefetchers,
        )
        self.o3cores = [O3Core(i, self.hierarchy, self.config.core) for i in range(cores)]
        chunk = self.config.warmup_records + self.config.measure_records
        self.traces = [
            _EndlessTrace(spec, chunk, seed + i, core=i)
            for i, spec in enumerate(mix.workloads)
        ]
        self.steps = [0] * cores
        self.measuring = False
        #: Per-core measured numbers, filled as each core crosses its
        #: ``measure_records`` target.  Sim state (not a ``measure()``
        #: local) so mid-measurement snapshots are resumable.
        self.outcomes: List[Optional[CoreOutcome]] = [None] * cores
        #: The driver for the per-access loop (``config.engine``); every
        #: phase advances through it, so scalar/batched is a pure seam.
        self._engine = make_engine(self.config)
        #: Records stepped so far across both phases (the cursor the
        #: telemetry cadence and checkpoint loop align on).
        self.consumed = 0
        self._telemetry: Optional[Telemetry] = None
        self._probe_set: Optional[ProbeSet] = None

    # -- probe surface (index-0 views, matching the single-core shape) ---------

    @property
    def core(self) -> O3Core:
        """Core 0: lets single-core telemetry probes attach unchanged."""
        return self.o3cores[0]

    @property
    def prefetcher(self) -> Prefetcher:
        """Core 0's prefetcher, for the same probe duck-typing."""
        return self.prefetchers[0]

    @property
    def measure_complete(self) -> bool:
        return self.measuring and all(
            outcome is not None for outcome in self.outcomes
        )

    def _min_cycle(self) -> float:
        """The schedule clock: the frontier all cores have reached."""
        return float(min(core.cycle for core in self.o3cores))

    # -- telemetry -------------------------------------------------------------

    def attach_telemetry(
        self, session: Optional[Telemetry], label: Optional[str] = None
    ) -> Optional[ProbeSet]:
        """Record this sim's phases and probe samples into ``session``.

        Identical contract to the single-core sim: probes are read-only
        and sample between records at ``probe_every``-aligned counts of
        ``consumed`` (quantum boundaries under the batched engine, which
        flushes all state first), so instrumented runs stay bit-identical
        with uninstrumented ones.
        """
        if session is None or not session.enabled:
            return None
        self._telemetry = session
        self._probe_set = session.attach(
            label or f"{self.mix.name}/{self.prefetcher_name}", self
        )
        self.hierarchy.stats.attach("telemetry", self._probe_set.stats_adapter())
        tracer = session.tracer
        if tracer.enabled:
            tracer.instant(
                "run_begin",
                self._min_cycle(),
                args={
                    "mix": self.mix.name,
                    "prefetcher": self.prefetcher_name,
                    "seed": self.seed,
                },
            )
        return self._probe_set

    # -- phases ----------------------------------------------------------------

    def advance(self, n_records: int) -> int:
        """Step up to ``n_records`` of the current phase through the
        engine; returns early (short count) when the phase completes."""
        if n_records <= 0:
            return 0
        if self._telemetry is not None:
            return self._advance_instrumented(n_records)
        return self._engine.advance_multi(self, n_records)

    def _advance_instrumented(self, n_records: int) -> int:
        """The traced twin of ``advance``: same stepping, plus sampling
        at each ``probe_every`` boundary of ``consumed``, stamped with
        the schedule clock (minimum core cycle)."""
        session = self._telemetry
        probe_set = self._probe_set
        tracer = session.tracer
        every = session.probe_every
        advance_multi = self._engine.advance_multi
        total_taken = 0
        remaining = n_records
        while remaining > 0:
            to_boundary = every - (self.consumed % every)
            chunk = to_boundary if to_boundary < remaining else remaining
            taken = advance_multi(self, chunk)
            total_taken += taken
            remaining -= taken
            if taken < chunk:
                break  # phase complete
            if probe_set is not None and self.consumed % every == 0:
                probe_set.sample(self._min_cycle(), tracer)
        return total_taken

    def _capture_core(self, i: int) -> None:
        """Capture core ``i``'s outcome at its ``measure_records`` mark.

        Called by the engine (contract point 4) right after the step
        that reaches the target, with the core's state flushed.  Drains
        outstanding loads first — exactly what the scalar loop did — so
        the drain's cycle movement is part of the schedule under every
        engine.
        """
        core = self.o3cores[i]
        core.drain()
        result = core.result()
        scoped = self.hierarchy.core_snapshot(i)
        self.outcomes[i] = CoreOutcome(
            workload=self.mix.workloads[i].name,
            instructions=result.instructions,
            cycles=result.cycles,
            l2_misses=int(scoped["l2.demand_misses"]),
            prefetches_issued=int(scoped["prefetcher.prefetch.issued"]),
            prefetches_useful=int(scoped["prefetcher.prefetch.useful"]),
            stats=scoped,
        )

    def warmup(self) -> None:
        """Warm every core up, in cycle order."""
        remaining = self.mix.cores * self.config.warmup_records - sum(self.steps)
        if self._telemetry is None:
            self.advance(remaining)
            return
        start = self._min_cycle()
        self.advance(remaining)
        tracer = self._telemetry.tracer
        if tracer.enabled:
            tracer.complete(
                "warmup",
                start,
                self._min_cycle() - start,
                args={"records": self.consumed},
            )

    def begin_measurement(self) -> None:
        self.hierarchy.reset_stats()
        for core in self.o3cores:
            core.begin_measurement()
        self.steps = [0] * self.mix.cores
        self.outcomes = [None] * self.mix.cores
        self.measuring = True
        if self._telemetry is not None and self._telemetry.tracer.enabled:
            self._telemetry.tracer.instant(
                "measure_begin", self._min_cycle(), args={"consumed": self.consumed}
            )

    def measure(self) -> MultiCoreResult:
        """Measure; finished cores keep running (replay) so the
        contention seen by still-measuring cores stays realistic."""
        start = self._min_cycle()
        while not self.measure_complete:
            if self.advance(1 << 30) == 0:
                break
        if self._telemetry is not None and self._telemetry.tracer.enabled:
            self._telemetry.tracer.complete(
                "measure",
                start,
                self._min_cycle() - start,
                args={"records": self.consumed},
            )
        return self.result()

    def result(self) -> MultiCoreResult:
        return MultiCoreResult(
            mix_name=self.mix.name,
            prefetcher=self.prefetcher_name,
            cores=[outcome for outcome in self.outcomes if outcome is not None],
        )

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "mix": self.mix.name,
            "workloads": [spec.name for spec in self.mix.workloads],
            "prefetcher": self.prefetcher_name,
            "seed": self.seed,
            "measuring": self.measuring,
            "consumed": self.consumed,
            "steps": list(self.steps),
            "outcomes": [
                dataclasses.asdict(outcome) if outcome is not None else None
                for outcome in self.outcomes
            ],
            "traces": [trace.state_dict() for trace in self.traces],
            "cores": [core.state_dict() for core in self.o3cores],
            "hierarchy": self.hierarchy.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        for key, expect in (
            ("mix", self.mix.name),
            ("prefetcher", self.prefetcher_name),
            ("seed", self.seed),
        ):
            if state.get(key) != expect:
                raise SnapshotError(
                    f"snapshot {key}={state.get(key)!r} does not match sim {expect!r}"
                )
        if len(state["traces"]) != self.mix.cores:
            raise SnapshotError(
                f"snapshot targets {len(state['traces'])} cores, mix has {self.mix.cores}"
            )
        for trace, trace_state in zip(self.traces, state["traces"]):
            trace.load_state(trace_state)
        for core, core_state in zip(self.o3cores, state["cores"]):
            core.load_state(core_state)
        self.hierarchy.load_state(state["hierarchy"])
        self.steps[:] = [int(n) for n in state["steps"]]
        self.measuring = bool(state["measuring"])
        self.consumed = int(state["consumed"])
        self.outcomes = [
            CoreOutcome(**outcome) if outcome is not None else None
            for outcome in state["outcomes"]
        ]

    def snapshot(self, phase: str) -> Snapshot:
        return Snapshot(
            kind=KIND_MULTI_CORE,
            payload=self.state_dict(),
            meta={
                "mix": self.mix.name,
                "prefetcher": self.prefetcher_name,
                "seed": self.seed,
                "phase": phase,
                "config_fingerprint": fingerprint_digest(self.config),
            },
        )


def _try_restore(sim: MultiCoreSim, snapshot: Optional[Snapshot]) -> bool:
    """Apply a snapshot if possible; any failure leaves state untouched
    logically (the caller rebuilds a fresh sim) and reports False."""
    if snapshot is None or snapshot.kind != KIND_MULTI_CORE:
        return False
    try:
        sim.load_state(snapshot.payload)
    except (SnapshotError, KeyError, ValueError, TypeError, IndexError):
        return False
    return True


def run_multi_core(
    mix: WorkloadMix,
    prefetcher: str,
    config: Optional[SimConfig] = None,
    seed: int = 1,
    *,
    warmup_store: Optional[SnapshotStore] = None,
    checkpoint_path: Optional[Path | str] = None,
    checkpoint_every: Optional[int] = None,
    telemetry: Optional[Telemetry] = _UNSET,
) -> MultiCoreResult:
    """Run one workload mix with the same prefetching scheme on every core.

    With ``warmup_store``, the warmed whole-mix state (all private
    caches, prefetcher tables, the shared LLC/DRAM and every trace
    cursor) restores from a prior run's snapshot when available —
    bit-identically — and is published after warmup otherwise.
    ``checkpoint_path``/``checkpoint_every`` add periodic mid-measurement
    checkpoints with restore-on-entry, at record granularity, exactly
    like the single-core driver; ``telemetry`` follows the same
    resolution rules (omitted = process session, ``None`` = off).
    """
    session = _resolve_telemetry(telemetry)
    sim = MultiCoreSim(mix, prefetcher, config, seed)

    restored = False
    if checkpoint_path is not None:
        checkpoint_path = Path(checkpoint_path)
        if checkpoint_path.exists():
            try:
                snapshot = load_snapshot(checkpoint_path)
            except SnapshotError:
                snapshot = None
            restored = _try_restore(sim, snapshot)
            if snapshot is not None and not restored:
                # Unusable leftover (corrupt or mismatched): start clean.
                sim = MultiCoreSim(mix, prefetcher, config, seed)

    save_warmup = False
    if not restored and warmup_store is not None and sim.config.warmup_records > 0:
        digest = multi_core_warmup_digest(mix, prefetcher, sim.config, seed)
        restored = _try_restore(sim, warmup_store.load(digest))
        if not restored:
            sim = MultiCoreSim(mix, prefetcher, config, seed)
            save_warmup = True

    if session is not None:
        sim.attach_telemetry(session)
        if restored and session.tracer.enabled:
            session.tracer.instant(
                "restored", sim._min_cycle(), args={"consumed": sim.consumed}
            )

    if not sim.measuring:
        sim.warmup()
        if save_warmup:
            warmup_store.save(digest, sim.snapshot("warmup"))
        sim.begin_measurement()

    if checkpoint_path is not None and checkpoint_every:
        while not sim.measure_complete:
            sim.advance(checkpoint_every)
            if not sim.measure_complete:
                save_snapshot(checkpoint_path, sim.snapshot("measure"))
                if session is not None and session.tracer.enabled:
                    session.tracer.instant(
                        "checkpoint_save",
                        sim._min_cycle(),
                        args={"consumed": sim.consumed},
                    )
        return sim.result()
    return sim.measure()
