"""Multi-core simulation driver (§5.3 multi-core methodology).

``cores`` instances of the workload mix run concurrently: private
L1/L2 and one prefetcher per core, shared LLC and DRAM channels.  Cores
advance in global cycle order, so they genuinely contend for LLC
capacity and DRAM bandwidth — the effect that makes filtering useless
prefetches worth more in multi-core than single-core (§6.2).

Methodology mirrors the paper: all cores warm up, stats reset, then each
core is measured over its next ``measure_records`` loads.  Cores that
finish early keep executing (their trace replays) so the contention on
the still-measuring cores stays realistic; the replayed work is not
counted.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..checkpoint import KIND_MULTI_CORE, Snapshot, SnapshotError, SnapshotStore
from ..cpu.o3core import O3Core
from ..cpu.trace import TraceRecord
from ..memory.hierarchy import MemoryHierarchy
from ..prefetchers.base import Prefetcher
from ..workloads.mixes import WorkloadMix
from ..workloads.spec2017 import WorkloadSpec
from .config import SimConfig
from .fingerprint import fingerprint_digest
from .single_core import make_prefetcher


@dataclass
class CoreOutcome:
    """Per-core measured numbers within a mix run.

    Built from the core's private scope of the hierarchy stats tree
    (``core<i>.*``), captured at the moment the core finishes its
    measured records; the full scoped snapshot rides along in ``stats``.
    """

    workload: str
    instructions: int
    cycles: int
    l2_misses: int
    prefetches_issued: int
    prefetches_useful: int
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


@dataclass
class MultiCoreResult:
    """Outcome of one mix under one prefetching scheme."""

    mix_name: str
    prefetcher: str
    cores: List[CoreOutcome] = field(default_factory=list)

    @property
    def per_core_ipc(self) -> List[float]:
        return [core.ipc for core in self.cores]

    @property
    def total_useful(self) -> int:
        return sum(core.prefetches_useful for core in self.cores)

    @property
    def total_issued(self) -> int:
        return sum(core.prefetches_issued for core in self.cores)


class _EndlessTrace:
    """Replay the workload forever (fresh seed per lap) for contention.

    Each core's addresses are relocated into a disjoint physical region
    (as the OS would map separate processes) — otherwise two copies of
    the same benchmark would constructively share the LLC.  Iteration is
    record-for-record identical to the generator this class replaced;
    the class form exists so the lap position can be snapshotted.
    """

    def __init__(self, workload: WorkloadSpec, chunk: int, seed: int, core: int) -> None:
        self._workload = workload
        self._chunk = chunk
        self._offset = core << 44
        self.lap_seed = seed
        self._stream = workload.trace(chunk, seed=seed)
        self._it = iter(self._stream)

    def __iter__(self) -> "_EndlessTrace":
        return self

    def __next__(self) -> TraceRecord:
        try:
            rec = next(self._it)
        except StopIteration:
            self.lap_seed += 1
            self._stream = self._workload.trace(self._chunk, seed=self.lap_seed)
            self._it = iter(self._stream)
            rec = next(self._it)
        return TraceRecord(pc=rec.pc, addr=rec.addr + self._offset, bubble=rec.bubble)

    def state_dict(self) -> dict:
        stream_state = getattr(self._stream, "state_dict", None)
        if stream_state is None:
            raise SnapshotError(
                f"trace of workload {self._workload.name!r} is not checkpointable"
            )
        return {"lap_seed": self.lap_seed, "stream": stream_state()}

    def load_state(self, state: dict) -> None:
        lap_seed = int(state["lap_seed"])
        if lap_seed != self.lap_seed:
            self.lap_seed = lap_seed
            self._stream = self._workload.trace(self._chunk, seed=lap_seed)
            self._it = iter(self._stream)
        self._stream.load_state(state["stream"])


def multi_core_warmup_digest(
    mix: WorkloadMix, prefetcher: str, config: SimConfig, seed: int
) -> str:
    """Content address of a mix's warmup-boundary snapshot.

    Unlike the single-core key, ``measure_records`` stays in: the warmup
    phase interleaves cores by cycle order over laps of length
    ``warmup + measure``, so the measurement length shapes warmup state.
    """
    token = json.dumps(
        [
            "warmup-mc",
            mix.name,
            [spec.name for spec in mix.workloads],
            prefetcher,
            fingerprint_digest(config),
            seed,
        ]
    )
    return hashlib.sha256(token.encode("utf-8")).hexdigest()[:32]


class MultiCoreSim:
    """One mix simulation with explicit phases and snapshot support.

    ``state_dict()`` is valid at any record boundary of the *warmup*
    phase (including its end) — per-core measurement bookkeeping only
    exists inside ``measure()``, so snapshots are taken at the warmup
    boundary, which is where all the reusable work lives.
    """

    def __init__(
        self,
        mix: WorkloadMix,
        prefetcher: str,
        config: Optional[SimConfig] = None,
        seed: int = 1,
    ) -> None:
        cores = mix.cores
        self.mix = mix
        self.prefetcher_name = prefetcher
        self.config = config or SimConfig.multicore(cores)
        self.seed = seed
        self.prefetchers: List[Prefetcher] = [
            make_prefetcher(prefetcher) for _ in range(cores)
        ]
        self.hierarchy = MemoryHierarchy(
            num_cores=cores,
            config=self.config.hierarchy,
            dram_config=self.config.dram,
            prefetchers=self.prefetchers,
        )
        self.o3cores = [O3Core(i, self.hierarchy, self.config.core) for i in range(cores)]
        chunk = self.config.warmup_records + self.config.measure_records
        self.traces = [
            _EndlessTrace(spec, chunk, seed + i, core=i)
            for i, spec in enumerate(mix.workloads)
        ]
        self.steps = [0] * cores
        self.measuring = False

    def warmup(self) -> None:
        """Warm every core up, in cycle order."""
        cores = self.mix.cores
        config = self.config
        o3cores = self.o3cores
        traces = self.traces
        steps = self.steps
        while any(steps[i] < config.warmup_records for i in range(cores)):
            i = min(
                (i for i in range(cores) if steps[i] < config.warmup_records),
                key=lambda i: o3cores[i].cycle,
            )
            o3cores[i].step(next(traces[i]))
            steps[i] += 1

    def begin_measurement(self) -> None:
        self.hierarchy.reset_stats()
        for core in self.o3cores:
            core.begin_measurement()
        self.steps = [0] * self.mix.cores
        self.measuring = True

    def measure(self) -> MultiCoreResult:
        """Measure; finished cores keep running (replay) so the
        contention seen by still-measuring cores stays realistic."""
        cores = self.mix.cores
        config = self.config
        o3cores = self.o3cores
        traces = self.traces
        steps = self.steps
        outcomes: List[Optional[CoreOutcome]] = [None] * cores
        while any(outcome is None for outcome in outcomes):
            i = min(range(cores), key=lambda i: o3cores[i].cycle)
            o3cores[i].step(next(traces[i]))
            steps[i] += 1
            if outcomes[i] is None and steps[i] >= config.measure_records:
                o3cores[i].drain()
                result = o3cores[i].result()
                scoped = self.hierarchy.core_snapshot(i)
                outcomes[i] = CoreOutcome(
                    workload=self.mix.workloads[i].name,
                    instructions=result.instructions,
                    cycles=result.cycles,
                    l2_misses=int(scoped["l2.demand_misses"]),
                    prefetches_issued=int(scoped["prefetcher.prefetch.issued"]),
                    prefetches_useful=int(scoped["prefetcher.prefetch.useful"]),
                    stats=scoped,
                )
        return MultiCoreResult(
            mix_name=self.mix.name,
            prefetcher=self.prefetcher_name,
            cores=[outcome for outcome in outcomes if outcome is not None],
        )

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "mix": self.mix.name,
            "workloads": [spec.name for spec in self.mix.workloads],
            "prefetcher": self.prefetcher_name,
            "seed": self.seed,
            "measuring": self.measuring,
            "steps": list(self.steps),
            "traces": [trace.state_dict() for trace in self.traces],
            "cores": [core.state_dict() for core in self.o3cores],
            "hierarchy": self.hierarchy.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        for key, expect in (
            ("mix", self.mix.name),
            ("prefetcher", self.prefetcher_name),
            ("seed", self.seed),
        ):
            if state.get(key) != expect:
                raise SnapshotError(
                    f"snapshot {key}={state.get(key)!r} does not match sim {expect!r}"
                )
        if len(state["traces"]) != self.mix.cores:
            raise SnapshotError(
                f"snapshot targets {len(state['traces'])} cores, mix has {self.mix.cores}"
            )
        for trace, trace_state in zip(self.traces, state["traces"]):
            trace.load_state(trace_state)
        for core, core_state in zip(self.o3cores, state["cores"]):
            core.load_state(core_state)
        self.hierarchy.load_state(state["hierarchy"])
        self.steps[:] = [int(n) for n in state["steps"]]
        self.measuring = bool(state["measuring"])

    def snapshot(self, phase: str) -> Snapshot:
        return Snapshot(
            kind=KIND_MULTI_CORE,
            payload=self.state_dict(),
            meta={
                "mix": self.mix.name,
                "prefetcher": self.prefetcher_name,
                "seed": self.seed,
                "phase": phase,
                "config_fingerprint": fingerprint_digest(self.config),
            },
        )


def run_multi_core(
    mix: WorkloadMix,
    prefetcher: str,
    config: Optional[SimConfig] = None,
    seed: int = 1,
    *,
    warmup_store: Optional[SnapshotStore] = None,
) -> MultiCoreResult:
    """Run one workload mix with the same prefetching scheme on every core.

    With ``warmup_store``, the warmed whole-mix state (all private
    caches, prefetcher tables, the shared LLC/DRAM and every trace
    cursor) restores from a prior run's snapshot when available —
    bit-identically — and is published after warmup otherwise.
    """
    sim = MultiCoreSim(mix, prefetcher, config, seed)
    restored = False
    if warmup_store is not None and sim.config.warmup_records > 0:
        digest = multi_core_warmup_digest(mix, prefetcher, sim.config, seed)
        snapshot = warmup_store.load(digest)
        if snapshot is not None and snapshot.kind == KIND_MULTI_CORE:
            try:
                sim.load_state(snapshot.payload)
                restored = True
            except (SnapshotError, KeyError, ValueError, TypeError, IndexError):
                sim = MultiCoreSim(mix, prefetcher, config, seed)
        if not restored:
            sim.warmup()
            warmup_store.save(digest, sim.snapshot("warmup"))
            restored = True  # warmed by simulation, snapshot published
    if not restored:
        sim.warmup()
    sim.begin_measurement()
    return sim.measure()
