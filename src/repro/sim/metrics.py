"""Evaluation metrics: speedups, coverage, accuracy, weighted IPC (§5.3, §6).

The paper reports:

* single-core **IPC speedup** over the no-prefetching baseline, and
  geometric means over benchmark groups;
* prefetcher **accuracy** (useful / issued) and **coverage** (fraction
  of baseline misses removed, per cache level);
* multi-core **weighted-IPC speedup**: each core's IPC is normalized to
  the same workload running alone, the per-core ratios are summed, and
  the sum is normalized to the no-prefetching case.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence


def speedup(ipc: float, baseline_ipc: float) -> float:
    """IPC ratio vs a baseline run (1.0 = no change)."""
    if baseline_ipc <= 0:
        raise ValueError("baseline IPC must be positive")
    return ipc / baseline_ipc


def percent_gain(ratio: float) -> float:
    """Convert a speedup ratio to the paper's percent-improvement form."""
    return 100.0 * (ratio - 1.0)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (paper's aggregation)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def coverage(baseline_misses: int, prefetch_misses: int) -> float:
    """Fraction of baseline misses removed by prefetching (§6.1).

    Negative coverage means the prefetcher *added* misses (pollution).
    """
    if baseline_misses < 0 or prefetch_misses < 0:
        raise ValueError("miss counts must be non-negative")
    if baseline_misses == 0:
        return 0.0
    return (baseline_misses - prefetch_misses) / baseline_misses


def accuracy(useful: int, issued: int) -> float:
    """Fraction of issued prefetches that were demanded (§1)."""
    if useful < 0 or issued < 0:
        raise ValueError("counts must be non-negative")
    if issued == 0:
        return 0.0
    return useful / issued


def mpki(misses: int, instructions: int) -> float:
    """Misses per kilo-instruction."""
    if instructions <= 0:
        raise ValueError("instruction count must be positive")
    return 1000.0 * misses / instructions


def weighted_ipc(
    per_core_ipc: Sequence[float], isolated_ipc: Sequence[float]
) -> float:
    """Sum of per-core IPC ratios vs isolated execution (§5.3)."""
    if len(per_core_ipc) != len(isolated_ipc):
        raise ValueError("need one isolated IPC per core")
    if not per_core_ipc:
        raise ValueError("weighted IPC of no cores")
    total = 0.0
    for ipc, alone in zip(per_core_ipc, isolated_ipc):
        if alone <= 0:
            raise ValueError("isolated IPC must be positive")
        total += ipc / alone
    return total


def weighted_speedup(
    per_core_ipc: Sequence[float],
    isolated_ipc: Sequence[float],
    baseline_per_core_ipc: Sequence[float],
    baseline_isolated_ipc: Sequence[float] | None = None,
) -> float:
    """Weighted-IPC of a scheme normalized to the no-prefetch case (§5.3)."""
    if baseline_isolated_ipc is None:
        baseline_isolated_ipc = isolated_ipc
    scheme = weighted_ipc(per_core_ipc, isolated_ipc)
    baseline = weighted_ipc(baseline_per_core_ipc, baseline_isolated_ipc)
    if baseline <= 0:
        raise ValueError("baseline weighted IPC must be positive")
    return scheme / baseline


def summarize_speedups(speedups: Mapping[str, float]) -> Dict[str, float]:
    """Geomean + extremes of a name->speedup mapping (report helper)."""
    values = list(speedups.values())
    return {
        "geomean": geometric_mean(values),
        "best": max(values),
        "worst": min(values),
    }
