"""Parallel, persistently-cached, fault-tolerant (workload × prefetcher) sweeps.

:class:`SuiteRunner` is the execution engine behind
:class:`repro.sim.runner.ExperimentRunner`:

* **Parallelism** — cache-missing cells fan out over a
  ``concurrent.futures.ProcessPoolExecutor`` (``jobs`` workers, default
  ``os.cpu_count()``).  Every run is an independent, deterministic
  function of ``(workload, prefetcher, config, seed)``, so parallel and
  serial sweeps produce bit-identical results (asserted by
  ``tests/test_determinism.py``).
* **Persistent caching** — with a ``cache_dir``, results are stored as
  JSON keyed by a complete, auto-derived fingerprint of ``SimConfig``
  (see :mod:`repro.sim.fingerprint`), so re-running a figure after
  touching one prefetcher only re-simulates the affected cells and a
  clean re-run does zero simulation work.
* **Fault tolerance** — one crashed or hung worker no longer aborts the
  sweep.  A :class:`CellPolicy` bounds each cell with a timeout and a
  retry budget; a cell that exhausts its pool attempts falls back to
  serial in-process execution; a broken process pool is recovered by
  salvaging every already-completed future and resubmitting only the
  lost cells to a fresh pool.  The outcome of every cell is written to
  an optional JSONL run ledger and summarized in the
  :class:`FailureReport` attached to each :class:`SuiteResult`, so
  callers can tell a *complete* sweep from a *degraded* one
  (:meth:`SuiteResult.require_complete`).

Workers rehydrate workloads by name through the component registry
(:func:`repro.workloads.find_workload`); workload specs whose builders
are picklable are shipped directly, so custom out-of-catalog specs
parallelize too, and anything else transparently runs in-process.

Execution itself sits behind the :class:`Backend` seam: the runner owns
cell expansion, caching, the ledger and failure semantics, while a
backend decides *where* pending cells run — the in-process
:class:`LocalPoolBackend` here, or :class:`repro.farm.FarmBackend`,
which feeds a durable work queue drained by any number of worker
processes (see ``docs/architecture.md`` "Sweep farm & service").
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..checkpoint import SnapshotStore
from ..ioutil import atomic_write
from ..stats import Accumulator, StatGroup, StatsNode
from ..workloads.spec2017 import WorkloadSpec
from .config import SimConfig
from .fingerprint import cell_digest, config_fingerprint, fingerprint_digest, token_digest
from .metrics import geometric_mean
from .single_core import RunResult, run_single_core, warmup_digest

#: Bump when the RunResult schema changes so stale disk entries miss.
#: v3: cell ledger entries grew provenance fields (fingerprint,
#: result_path, snapshot_path, seed) and the config fingerprint itself
#: now folds in the checkpoint schema version.
CACHE_SCHEMA_VERSION = 3


class DegradedSweepError(RuntimeError):
    """A sweep lost cells that no recovery path could bring back."""


@dataclasses.dataclass(frozen=True)
class CellPolicy:
    """Failure-handling budget for each cell of a sweep.

    ``timeout``
        Seconds to wait for a pool cell's result before declaring it
        hung (``None``: wait forever).  A timed-out cell's pool is torn
        down — completed siblings are salvaged, running ones resubmitted
        to a fresh pool — and the cell itself is retried or falls back.
    ``retries``
        How many times a failed/timed-out/lost cell may be re-executed
        in a worker pool before falling back.
    ``fallback_serial``
        Whether a cell that exhausts its pool attempts is re-run
        serially in-process as a last resort.  When disabled (or when
        the serial run also fails) the cell is reported as unrecovered
        and simply missing from ``SuiteResult.runs``.
    """

    timeout: Optional[float] = None
    retries: int = 1
    fallback_serial: bool = True

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")


@dataclasses.dataclass
class CellFailure:
    """One cell that failed at least once during a sweep."""

    workload: str
    prefetcher: str
    attempts: int  # failed execution attempts
    error: str  # last error observed
    recovered: bool
    recovery: Optional[str] = None  # "pool-retry" | "serial-fallback" | None


@dataclasses.dataclass
class FailureReport:
    """What went wrong (and was recovered) during one sweep."""

    failures: List[CellFailure] = dataclasses.field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    pool_breaks: int = 0
    salvaged: int = 0
    serial_fallbacks: int = 0

    @property
    def unrecovered(self) -> List[CellFailure]:
        return [f for f in self.failures if not f.recovered]

    @property
    def complete(self) -> bool:
        return not self.unrecovered

    def summary(self) -> str:
        parts = [
            f"failures={len(self.failures)}",
            f"unrecovered={len(self.unrecovered)}",
            f"retries={self.retries}",
            f"timeouts={self.timeouts}",
            f"pool_breaks={self.pool_breaks}",
            f"salvaged={self.salvaged}",
            f"serial_fallbacks={self.serial_fallbacks}",
        ]
        return " ".join(parts)


class RunLedger:
    """Append-only JSONL record of how every sweep cell was served.

    One object per line: ``{"event": "cell", ...}`` when a cell
    resolves (status, served-from provenance, attempts, wall time),
    ``{"event": "attempt", ...}`` for each failed execution attempt,
    ``{"event": "lifecycle", ...}`` for each cell state transition
    (queued/cached/started/retried/finished — the live-progress feed),
    and ``{"event": "sweep", ...}`` summarizing each sweep.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.parent != Path():
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def record(self, **fields) -> None:
        with self.path.open("a") as fh:
            fh.write(json.dumps(fields) + "\n")


@dataclasses.dataclass
class SuiteResult:
    """All (workload × prefetcher) runs of one suite sweep.

    ``failure_report`` distinguishes a *complete* sweep from a
    *degraded* one: cells listed as unrecovered are absent from
    ``runs`` and every aggregate skips them.

    ``cache_hits``/``executed`` split the served cells into ones
    answered straight from the result cache (memory or disk) and ones
    that ran a simulation somewhere — the "CDN" efficiency of the
    fingerprint cache, which is the number that matters once sweeps are
    service-fronted: a re-submitted suite should be ~all hits.
    """

    runs: Dict[Tuple[str, str], RunResult] = dataclasses.field(default_factory=dict)
    failure_report: FailureReport = dataclasses.field(default_factory=FailureReport)
    cache_hits: int = 0
    executed: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of served cells answered from the result cache."""
        total = self.cache_hits + self.executed
        return self.cache_hits / total if total else 0.0

    def run_for(self, workload: str, prefetcher: str) -> RunResult:
        try:
            return self.runs[(workload, prefetcher)]
        except KeyError:
            raise KeyError(
                f"no run for cell ({workload!r}, {prefetcher!r}); "
                "the sweep may be degraded — see SuiteResult.failure_report"
            ) from None

    def require_complete(self) -> "SuiteResult":
        """Raise :class:`DegradedSweepError` if any cell was lost."""
        lost = self.failure_report.unrecovered
        if lost:
            cells = ", ".join(f"({f.workload}, {f.prefetcher})" for f in lost)
            raise DegradedSweepError(
                f"sweep lost {len(lost)} cell(s): {cells}; "
                f"last error: {lost[-1].error}"
            )
        return self

    def _baselines(
        self, prefetcher: str, baseline: str
    ) -> Iterable[Tuple[str, RunResult, Optional[RunResult]]]:
        """(workload, scheme run, baseline run or None) for each cell."""
        for (workload, name), result in self.runs.items():
            if name != prefetcher:
                continue
            yield workload, result, self.runs.get((workload, baseline))

    def speedups(self, prefetcher: str, baseline: str = "none") -> Dict[str, float]:
        """Per-workload IPC speedup of ``prefetcher`` over ``baseline``.

        Workloads whose baseline cell is missing (degraded sweep) are
        skipped; if *no* baseline run exists at all, raises a
        ``ValueError`` naming the missing cells instead of leaking a
        bare ``KeyError``.
        """
        out: Dict[str, float] = {}
        missing: List[str] = []
        for workload, result, base in self._baselines(prefetcher, baseline):
            if base is None:
                missing.append(workload)
            elif base.ipc > 0:
                out[workload] = result.ipc / base.ipc
        if missing and not out:
            raise ValueError(
                f"sweep has no {baseline!r} baseline run for "
                f"{sorted(missing)}; sweep with include_baseline=True "
                f"or pass baseline=<scheme>"
            )
        return out

    def geomean_speedup(
        self,
        prefetcher: str,
        workloads: Optional[Iterable[str]] = None,
        baseline: str = "none",
    ) -> float:
        per_workload = self.speedups(prefetcher, baseline)
        if workloads is not None:
            keep = set(workloads)
            per_workload = {k: v for k, v in per_workload.items() if k in keep}
        return geometric_mean(per_workload.values())

    def coverage(self, prefetcher: str, level: str = "l2", baseline: str = "none") -> float:
        """Suite-aggregate miss coverage vs ``baseline``.

        Missing-baseline handling matches :meth:`speedups`: degraded
        cells are skipped, a fully absent baseline raises ``ValueError``.
        """
        if level not in ("l2", "llc"):
            raise ValueError(f"unknown level {level!r}")
        baseline_misses = 0
        scheme_misses = 0
        matched = False
        missing: List[str] = []
        for workload, result, base in self._baselines(prefetcher, baseline):
            if base is None:
                missing.append(workload)
                continue
            matched = True
            if level == "l2":
                baseline_misses += base.l2_misses
                scheme_misses += result.l2_misses
            else:
                baseline_misses += base.llc_misses
                scheme_misses += result.llc_misses
        if missing and not matched:
            raise ValueError(
                f"sweep has no {baseline!r} baseline run for "
                f"{sorted(missing)}; sweep with include_baseline=True "
                f"or pass baseline=<scheme>"
            )
        if baseline_misses == 0:
            return 0.0
        return (baseline_misses - scheme_misses) / baseline_misses


@dataclasses.dataclass
class SweepStats(StatGroup):
    """Cumulative sweep-execution counters, mountable in a stats tree."""

    simulated: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    #: Cells whose warmup snapshot existed when they were dispatched
    #: (the simulation restores it instead of re-warming) / did not.
    snapshot_hits: int = 0
    snapshot_misses: int = 0
    #: Completed cells adopted from a prior run's ledger (crash-resume).
    resumed: int = 0
    #: Farm cells whose lease expired (dead/hung worker) and were
    #: reclaimed by another worker.
    reclaimed: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    pool_breaks: int = 0
    salvaged: int = 0
    serial_fallbacks: int = 0
    unrecovered: int = 0


# The cell content address moved to repro.sim.fingerprint so the farm
# queue can name tickets/claims/results without importing this module;
# the alias keeps existing callers and tests working.
_cell_digest = cell_digest


def result_cache_path_for_digest(
    cache_dir: Union[str, Path],
    workload: str,
    prefetcher: str,
    fingerprint: str,
    seed: int,
) -> Path:
    """Result-cache entry for already-digested config coordinates.

    The HTTP front end resolves cached-result lookups with nothing but
    the fingerprint digest a client quoted back — no config object ever
    crosses the wire.
    """
    digest = token_digest(CACHE_SCHEMA_VERSION, workload, prefetcher, fingerprint, seed)
    return Path(cache_dir) / f"{digest}.json"


def result_cache_path(
    cache_dir: Union[str, Path],
    workload: str,
    prefetcher: str,
    config: SimConfig,
    seed: int,
) -> Path:
    """Where one cell's cached :class:`RunResult` lives under ``cache_dir``.

    This *is* the result cache's key recipe — shared by the suite
    runner, farm workers publishing results from other processes, and
    the HTTP front end serving cached lookups by fingerprint.
    """
    return result_cache_path_for_digest(
        cache_dir, workload, prefetcher, fingerprint_digest(config), seed
    )


def _simulate_cell(
    payload: Union[str, WorkloadSpec],
    prefetcher: str,
    config: SimConfig,
    seed: int,
    snapshot_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
) -> RunResult:
    """One sweep cell, runnable in a worker process.

    ``payload`` is either a picklable :class:`WorkloadSpec` or a
    workload name rehydrated through the registry-backed catalog.  With
    ``snapshot_dir``, the worker shares the sweep-wide warmup snapshot
    store and (with ``checkpoint_every``) publishes periodic mid-measure
    checkpoints named by the cell digest; the checkpoint is removed once
    the cell's result exists, so leftovers always mean interrupted work.
    """
    if isinstance(payload, str):
        from ..workloads import find_workload

        spec = find_workload(payload)
    else:
        spec = payload
    warmup_store = None
    checkpoint_path = None
    if snapshot_dir is not None:
        root = Path(snapshot_dir)
        warmup_store = SnapshotStore(root)
        if checkpoint_every is not None:
            checkpoint_path = root / f"{_cell_digest(spec.name, prefetcher, config, seed)}.ckpt"
    # telemetry=None (not merely omitted) pins cells to the untraced
    # fast path even under an ambient ``repro.telemetry.activate``
    # session: cached results must never carry trace state, or a traced
    # sweep and an untraced one would disagree about cache contents.
    # Sweep observability lives at cell-lifecycle granularity instead.
    result = run_single_core(
        spec,
        prefetcher,
        config,
        seed=seed,
        warmup_store=warmup_store,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        telemetry=None,
    )
    if checkpoint_path is not None:
        checkpoint_path.unlink(missing_ok=True)
    return result


def _worker_payload(spec: WorkloadSpec) -> Optional[Union[str, WorkloadSpec]]:
    """How to ship one workload to a worker (None: not shippable)."""
    try:
        pickle.dumps(spec)
        return spec
    except Exception:
        pass
    try:
        from ..workloads import find_workload

        find_workload(spec.name)
        return spec.name
    except Exception:
        return None


class _Cell:
    """Mutable execution state of one pending sweep cell."""

    __slots__ = ("spec", "scheme", "payload", "attempts", "errors", "started", "provenance")

    def __init__(self, spec: WorkloadSpec, scheme: str) -> None:
        self.spec = spec
        self.scheme = scheme
        self.payload: Optional[Union[str, WorkloadSpec]] = None
        self.attempts = 0  # failed execution attempts so far
        self.errors: List[str] = []
        self.started = 0.0
        #: Ledger provenance fields (fingerprint, seed, artifact paths),
        #: fixed at dispatch time so every log site agrees.
        self.provenance: Dict[str, Optional[str]] = {}

    @property
    def key(self) -> Tuple[str, str]:
        return (self.spec.name, self.scheme)


class Backend:
    """How a sweep's cache-missing cells get executed.

    :meth:`SuiteRunner.sweep` owns everything *around* execution — cell
    expansion, cache lookups, ledger writes, lifecycle fan-out, the
    failure report and degraded-sweep semantics — and delegates only the
    actual running of pending cells to a backend.  Implementations must
    uphold two contracts:

    * every pending cell ends up either in ``suite.runs`` (recorded via
      ``runner._record`` so the caches agree) or in
      ``report.failures`` as unrecovered — never silently dropped;
    * execution is a pure function of ``(workload, prefetcher, config,
      seed)``, so *where* a cell runs can never change *what* it
      produces (the farm/local bit-identity tests pin this down).

    :class:`LocalPoolBackend` is the in-process default;
    :class:`repro.farm.FarmBackend` executes through a durable work
    queue shared with external worker processes.
    """

    name = "abstract"

    def execute(
        self,
        runner: "SuiteRunner",
        pending: List["_Cell"],
        config: SimConfig,
        suite: SuiteResult,
        report: FailureReport,
    ) -> None:
        raise NotImplementedError


class LocalPoolBackend(Backend):
    """The classic single-host executor: process pool with recovery."""

    name = "local"

    def execute(
        self,
        runner: "SuiteRunner",
        pending: List["_Cell"],
        config: SimConfig,
        suite: SuiteResult,
        report: FailureReport,
    ) -> None:
        if len(pending) > 1 and runner.jobs > 1:
            runner._run_parallel(pending, config, suite, report)
        else:
            for cell in pending:
                runner._serial_cell(cell, config, suite, report, recovery=None)


class SuiteRunner:
    """Parallel sweep executor with caches, retries and a run ledger."""

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        seed: int = 1,
        jobs: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        policy: Optional[CellPolicy] = None,
        ledger_path: Optional[Union[str, Path]] = None,
        snapshot_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: Optional[int] = None,
        observers: Optional[Sequence] = None,
        backend: Optional[Backend] = None,
    ) -> None:
        self.config = config or SimConfig.default()
        self.seed = seed
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive (or None)")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.policy = policy or CellPolicy()
        self.ledger = RunLedger(ledger_path) if ledger_path is not None else None
        #: Content-addressed warmup snapshots (plus in-progress cell
        #: checkpoints when ``checkpoint_every`` is set) live here, the
        #: snapshot analogue of ``cache_dir`` — shared by every worker.
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir is not None else None
        self.checkpoint_every = checkpoint_every
        self.snapshot_store = (
            SnapshotStore(self.snapshot_dir) if self.snapshot_dir is not None else None
        )
        self.memory_cache: Dict[Tuple, RunResult] = {}
        # Observability: how every cell of every sweep so far was served,
        # mounted as a stats tree so callers can fold sweep-execution
        # counters into larger reports.
        self.stats = StatsNode("sweep")
        self._exec: SweepStats = self.stats.attach("cells", SweepStats())
        self._wall: Accumulator = self.stats.attach("cell_seconds", Accumulator())
        #: Callables fed every lifecycle record (queued/cached/started/
        #: retried/finished) as it happens — the live progress renderer
        #: and anything else that wants to watch a sweep breathe.
        self.observers: List = list(observers or [])
        #: Execution strategy for cache-missing cells (see :class:`Backend`).
        self.backend: Backend = backend if backend is not None else LocalPoolBackend()
        self._sweep_epoch = perf_counter()

    def add_observer(self, observer) -> None:
        """Subscribe ``observer`` (a callable taking one record dict)."""
        self.observers.append(observer)

    def _lifecycle(self, phase: str, workload: str, prefetcher: str, **extra) -> None:
        """Emit one cell state transition to the ledger and observers.

        Timestamps are seconds since the current sweep's epoch — a
        relative clock, so ledgers don't embed wall-clock time and two
        recordings of the same sweep stay comparable.
        """
        record = {
            "event": "lifecycle",
            "phase": phase,
            "workload": workload,
            "prefetcher": prefetcher,
            "t": round(perf_counter() - self._sweep_epoch, 6),
        }
        record.update(extra)
        self.broadcast(record)

    def broadcast(self, record: Dict) -> None:
        """Feed one already-built record to the ledger and every observer.

        The farm backend re-emits worker-produced lifecycle records
        through here, so remote execution feeds the same ledger and the
        same live-progress/HTTP subscribers as in-process execution.
        """
        self._log(**record)
        for observer in self.observers:
            try:
                observer(record)
            except Exception:
                pass  # a broken observer must never break the sweep

    # -- legacy counter views ----------------------------------------------------

    @property
    def simulated(self) -> int:
        return self._exec.simulated

    @property
    def memory_hits(self) -> int:
        return self._exec.memory_hits

    @property
    def disk_hits(self) -> int:
        return self._exec.disk_hits

    def _log(self, **fields) -> None:
        if self.ledger is not None:
            self.ledger.record(**fields)

    # -- cache plumbing ---------------------------------------------------------

    def _memory_key(self, workload: str, prefetcher: str, config: SimConfig) -> Tuple:
        return (workload, prefetcher, config_fingerprint(config), self.seed)

    def _disk_path(self, workload: str, prefetcher: str, config: SimConfig) -> Path:
        assert self.cache_dir is not None
        return result_cache_path(self.cache_dir, workload, prefetcher, config, self.seed)

    def _disk_load(self, workload: str, prefetcher: str, config: SimConfig) -> Optional[RunResult]:
        if self.cache_dir is None:
            return None
        path = self._disk_path(workload, prefetcher, config)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None  # unreadable/corrupt entry: treat as a miss
        return RunResult(**data)

    def _disk_store(
        self, workload: str, prefetcher: str, config: SimConfig, result: RunResult
    ) -> None:
        if self.cache_dir is None:
            return
        path = self._disk_path(workload, prefetcher, config)
        # Unique-tmp + rename via the shared helper: concurrent writers
        # racing on one path agree on content, readers never see a
        # partial entry.
        with atomic_write(path, "w") as handle:
            handle.write(json.dumps(dataclasses.asdict(result)))

    def _lookup(
        self, workload: str, prefetcher: str, config: SimConfig
    ) -> Optional[Tuple[RunResult, str]]:
        """Cached result plus its provenance ("memory" | "disk")."""
        key = self._memory_key(workload, prefetcher, config)
        cached = self.memory_cache.get(key)
        if cached is not None:
            self._exec.memory_hits += 1
            return cached, "memory"
        cached = self._disk_load(workload, prefetcher, config)
        if cached is not None:
            self._exec.disk_hits += 1
            self.memory_cache[key] = cached
            return cached, "disk"
        return None

    def _record(
        self, workload: str, prefetcher: str, config: SimConfig, result: RunResult
    ) -> RunResult:
        self.memory_cache[self._memory_key(workload, prefetcher, config)] = result
        self._disk_store(workload, prefetcher, config, result)
        return result

    # -- snapshot plumbing -------------------------------------------------------

    def _snapshot_args(self) -> Tuple[Optional[str], Optional[int]]:
        """(snapshot_dir, checkpoint_every) as shipped to workers."""
        if self.snapshot_dir is None:
            return None, None
        return str(self.snapshot_dir), self.checkpoint_every

    def _provenance(
        self, workload: str, prefetcher: str, config: SimConfig
    ) -> Dict[str, Optional[str]]:
        """Where this cell's durable artifacts live, for the ledger.

        ``result_path``/``snapshot_path`` name where the result JSON and
        warmup snapshot are published — recorded even before they exist
        so a resuming run can find whatever the crashed run got done.
        """
        result_path = (
            str(self._disk_path(workload, prefetcher, config))
            if self.cache_dir is not None
            else None
        )
        snapshot_path = (
            str(self.snapshot_store.path_for(warmup_digest(workload, prefetcher, config, self.seed)))
            if self.snapshot_store is not None
            else None
        )
        return {
            "fingerprint": fingerprint_digest(config),
            "seed": self.seed,
            "result_path": result_path,
            "snapshot_path": snapshot_path,
        }

    def _note_snapshot(self, workload: str, prefetcher: str, config: SimConfig) -> None:
        """Count warmup-snapshot availability for one dispatched cell."""
        if self.snapshot_store is None:
            return
        digest = warmup_digest(workload, prefetcher, config, self.seed)
        if self.snapshot_store.contains(digest):
            self._exec.snapshot_hits += 1
        else:
            self._exec.snapshot_misses += 1

    def preload_from_ledger(
        self, ledger_path: Union[str, Path], config: Optional[SimConfig] = None
    ) -> int:
        """Adopt completed cells from a prior (possibly crashed) run.

        Replays ``cell`` events out of a run ledger and loads every
        result whose config fingerprint and seed match this runner from
        its recorded ``result_path`` into the in-memory cache, so a
        subsequent :meth:`sweep` serves those cells without touching the
        simulator.  Unreadable lines and missing/corrupt result files
        are skipped — resume never fails harder than a cold start.
        Returns the number of adopted cells (also counted in the
        ``resumed`` sweep stat).
        """
        config = config or self.config
        expect = fingerprint_digest(config)
        path = Path(ledger_path)
        if not path.exists():
            return 0
        adopted = 0
        for line in path.read_text().splitlines():
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if entry.get("event") != "cell" or entry.get("status") != "ok":
                continue
            if entry.get("fingerprint") != expect or entry.get("seed") != self.seed:
                continue
            workload = entry.get("workload")
            prefetcher = entry.get("prefetcher")
            result_path = entry.get("result_path")
            if not workload or not prefetcher or not result_path:
                continue
            key = self._memory_key(workload, prefetcher, config)
            if key in self.memory_cache:
                continue
            try:
                result = RunResult(**json.loads(Path(result_path).read_text()))
            except (OSError, ValueError, TypeError):
                continue
            self.memory_cache[key] = result
            adopted += 1
        self._exec.resumed += adopted
        return adopted

    # -- execution ---------------------------------------------------------------

    def single(
        self,
        workload: WorkloadSpec,
        prefetcher: str,
        config: Optional[SimConfig] = None,
    ) -> RunResult:
        """One cell: served from cache or simulated in-process.

        Unlike :meth:`sweep`, failures propagate to the caller — a
        single requested run has no siblings to degrade gracefully
        against.
        """
        config = config or self.config
        cached = self._lookup(workload.name, prefetcher, config)
        if cached is not None:
            return cached[0]
        self._note_snapshot(workload.name, prefetcher, config)
        start = perf_counter()
        result = _simulate_cell(
            workload, prefetcher, config, self.seed, *self._snapshot_args()
        )
        self._exec.simulated += 1
        self._wall.add(perf_counter() - start)
        return self._record(workload.name, prefetcher, config, result)

    def sweep(
        self,
        workloads: Sequence[WorkloadSpec],
        prefetchers: Sequence[str],
        config: Optional[SimConfig] = None,
        include_baseline: bool = True,
    ) -> SuiteResult:
        """Run every workload under every scheme (+ the baseline).

        Cache-missing cells are simulated concurrently when ``jobs > 1``;
        results are bit-identical to the serial path because each cell is
        an isolated deterministic simulation.  Worker crashes, hangs and
        pool deaths degrade the sweep instead of aborting it — see
        :class:`CellPolicy` and ``SuiteResult.failure_report``.
        """
        config = config or self.config
        names = list(prefetchers)
        if include_baseline and "none" not in names:
            names = ["none"] + names
        # Fail fast on typos (with did-you-mean) before any cell is
        # expanded, cached or shipped to a worker process.
        from ..zoo.filtered import validate_prefetcher_spec

        for scheme in names:
            validate_prefetcher_spec(scheme)

        sweep_start = perf_counter()
        self._sweep_epoch = sweep_start
        report = FailureReport()
        suite = SuiteResult(failure_report=report)
        served = {"memory": 0, "disk": 0}
        pending: List[_Cell] = []
        for spec in workloads:
            for scheme in names:
                cached = self._lookup(spec.name, scheme, config)
                if cached is not None:
                    result, source = cached
                    served[source] += 1
                    suite.runs[(spec.name, scheme)] = result
                    self._log(
                        event="cell",
                        workload=spec.name,
                        prefetcher=scheme,
                        status="ok",
                        source=source,
                        attempts=0,
                        wall_time=0.0,
                        error=None,
                        **self._provenance(spec.name, scheme, config),
                    )
                    self._lifecycle("cached", spec.name, scheme, source=source)
                else:
                    cell = _Cell(spec, scheme)
                    cell.provenance = self._provenance(spec.name, scheme, config)
                    self._note_snapshot(spec.name, scheme, config)
                    pending.append(cell)
                    self._lifecycle("queued", spec.name, scheme)

        self.backend.execute(self, pending, config, suite, report)

        suite.cache_hits = served["memory"] + served["disk"]
        suite.executed = len(suite.runs) - suite.cache_hits
        self._log(
            event="sweep",
            backend=self.backend.name,
            cells=len(pending) + served["memory"] + served["disk"],
            ok=len(suite.runs),
            failed=len(report.unrecovered),
            memory_hits=served["memory"],
            disk_hits=served["disk"],
            cache_hit_rate=round(suite.cache_hit_rate, 6),
            retries=report.retries,
            timeouts=report.timeouts,
            pool_breaks=report.pool_breaks,
            salvaged=report.salvaged,
            serial_fallbacks=report.serial_fallbacks,
            wall_time=perf_counter() - sweep_start,
        )
        return suite

    # -- parallel execution with recovery ---------------------------------------

    def _run_parallel(
        self,
        pending: Sequence[_Cell],
        config: SimConfig,
        suite: SuiteResult,
        report: FailureReport,
    ) -> None:
        shippable: List[_Cell] = []
        local: List[_Cell] = []
        for cell in pending:
            cell.payload = _worker_payload(cell.spec)
            if cell.payload is None:
                local.append(cell)
            else:
                shippable.append(cell)
        if shippable:
            self._run_pool(shippable, config, suite, report)
        for cell in local:
            self._serial_cell(cell, config, suite, report, recovery=None)

    def _run_pool(
        self,
        cells: List[_Cell],
        config: SimConfig,
        suite: SuiteResult,
        report: FailureReport,
    ) -> None:
        """Drive pool execution until every cell is resolved.

        Each iteration of the outer loop owns one pool.  A healthy pool
        drains its futures in submission order; a hung cell (timeout) or
        a broken pool tears the pool down, salvages every completed
        future and requeues the rest for the next pool.  Cells whose
        retry budget is exhausted collect in ``fallback`` and run
        serially at the end.
        """
        queue = list(cells)
        fallback: List[_Cell] = []
        while queue:
            batch, queue = queue, []
            pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(batch)))
            inflight: Dict[_Cell, Future] = {}
            snapshot_dir, checkpoint_every = self._snapshot_args()
            for cell in batch:
                cell.started = perf_counter()
                self._lifecycle("started", cell.spec.name, cell.scheme, attempt=cell.attempts + 1)
                inflight[cell] = pool.submit(
                    _simulate_cell,
                    cell.payload,
                    cell.scheme,
                    config,
                    self.seed,
                    snapshot_dir,
                    checkpoint_every,
                )
            alive = True
            try:
                while inflight:
                    cell = next(iter(inflight))
                    future = inflight.pop(cell)
                    try:
                        result = future.result(timeout=self.policy.timeout)
                    except FuturesTimeout:
                        if future.done() and future.exception() is None:
                            # Lost the race with completion: not a hang.
                            self._complete_pool_cell(cell, future.result(), config, suite, report)
                            continue
                        self._attempt_failed(
                            cell, "timeout", f"no result after {self.policy.timeout:g}s"
                        )
                        report.timeouts += 1
                        self._exec.timeouts += 1
                        self._dispose(cell, queue, fallback, report)
                        self._abandon_pool(
                            pool, inflight, config, suite, report, queue, fallback, blame=False
                        )
                        alive = False
                        break
                    except BrokenProcessPool as err:
                        self._attempt_failed(
                            cell, "pool-broken", str(err) or "process pool died"
                        )
                        report.pool_breaks += 1
                        self._exec.pool_breaks += 1
                        self._dispose(cell, queue, fallback, report)
                        self._abandon_pool(
                            pool, inflight, config, suite, report, queue, fallback, blame=True
                        )
                        alive = False
                        break
                    except CancelledError:
                        queue.append(cell)
                    except Exception as err:  # the worker raised: pool is healthy
                        self._attempt_failed(cell, "crash", f"{type(err).__name__}: {err}")
                        self._exec.crashes += 1
                        self._dispose(cell, queue, fallback, report)
                    else:
                        self._complete_pool_cell(cell, result, config, suite, report)
            finally:
                if alive:
                    pool.shutdown(wait=True)
        for cell in fallback:
            self._serial_cell(cell, config, suite, report, recovery="serial-fallback")

    def _abandon_pool(
        self,
        pool: ProcessPoolExecutor,
        inflight: Dict[_Cell, Future],
        config: SimConfig,
        suite: SuiteResult,
        report: FailureReport,
        queue: List[_Cell],
        fallback: List[_Cell],
        blame: bool,
    ) -> None:
        """Tear one pool down, salvaging every already-completed future.

        Lost (unfinished) cells are requeued for the next pool.  After a
        pool break the culprit is unknowable, so ``blame=True`` charges
        every lost cell one attempt — a deterministic crasher therefore
        exhausts its budget within ``retries + 1`` pool generations.  A
        timeout kill (``blame=False``) requeues innocents for free.
        """
        lost: List[Tuple[_Cell, Future]] = []
        for cell, future in inflight.items():
            if future.done() and not future.cancelled() and future.exception() is None:
                self._complete_pool_cell(
                    cell, future.result(), config, suite, report, salvaged=True
                )
            else:
                lost.append((cell, future))
        inflight.clear()
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.kill()
            except OSError:
                pass
        pool.shutdown(wait=True)
        for cell, _future in lost:
            if blame:
                self._attempt_failed(cell, "lost", "process pool died")
                self._dispose(cell, queue, fallback, report)
            else:
                queue.append(cell)

    def _attempt_failed(self, cell: _Cell, kind: str, error: str) -> None:
        cell.attempts += 1
        cell.errors.append(error)
        self._log(
            event="attempt",
            workload=cell.spec.name,
            prefetcher=cell.scheme,
            kind=kind,
            attempt=cell.attempts,
            error=error,
        )

    def _dispose(
        self,
        cell: _Cell,
        queue: List[_Cell],
        fallback: List[_Cell],
        report: FailureReport,
    ) -> None:
        """Route a just-failed cell: pool retry, serial fallback, or give up."""
        if cell.attempts <= self.policy.retries:
            report.retries += 1
            self._exec.retries += 1
            queue.append(cell)
            self._lifecycle(
                "retried", cell.spec.name, cell.scheme, attempt=cell.attempts
            )
        elif self.policy.fallback_serial:
            fallback.append(cell)
        else:
            self._resolve_unrecovered(cell, report)

    def _resolve_unrecovered(self, cell: _Cell, report: FailureReport) -> None:
        report.failures.append(
            CellFailure(
                workload=cell.spec.name,
                prefetcher=cell.scheme,
                attempts=cell.attempts,
                error=cell.errors[-1] if cell.errors else "unknown",
                recovered=False,
            )
        )
        self._exec.unrecovered += 1
        self._log(
            event="cell",
            workload=cell.spec.name,
            prefetcher=cell.scheme,
            status="failed",
            source=None,
            attempts=cell.attempts,
            wall_time=None,
            error=cell.errors[-1] if cell.errors else "unknown",
            **cell.provenance,
        )
        self._lifecycle(
            "finished", cell.spec.name, cell.scheme, ok=False, attempts=cell.attempts
        )

    def _complete_pool_cell(
        self,
        cell: _Cell,
        result: RunResult,
        config: SimConfig,
        suite: SuiteResult,
        report: FailureReport,
        salvaged: bool = False,
    ) -> None:
        elapsed = perf_counter() - cell.started
        self._exec.simulated += 1
        self._wall.add(elapsed)
        suite.runs[cell.key] = self._record(cell.spec.name, cell.scheme, config, result)
        if salvaged:
            report.salvaged += 1
            self._exec.salvaged += 1
        if cell.errors:
            report.failures.append(
                CellFailure(
                    workload=cell.spec.name,
                    prefetcher=cell.scheme,
                    attempts=cell.attempts,
                    error=cell.errors[-1],
                    recovered=True,
                    recovery="pool-retry",
                )
            )
        self._log(
            event="cell",
            workload=cell.spec.name,
            prefetcher=cell.scheme,
            status="ok",
            source="simulated",
            salvaged=salvaged,
            attempts=cell.attempts + 1,
            wall_time=elapsed,
            error=cell.errors[-1] if cell.errors else None,
            **cell.provenance,
        )
        self._lifecycle(
            "finished",
            cell.spec.name,
            cell.scheme,
            ok=True,
            salvaged=salvaged,
            wall_time=round(elapsed, 6),
        )

    def _serial_cell(
        self,
        cell: _Cell,
        config: SimConfig,
        suite: SuiteResult,
        report: FailureReport,
        recovery: Optional[str],
    ) -> None:
        """Run one cell in-process; failures degrade instead of raising."""
        start = perf_counter()
        self._lifecycle(
            "started",
            cell.spec.name,
            cell.scheme,
            attempt=cell.attempts + 1,
            serial=True,
        )
        try:
            result = _simulate_cell(
                cell.spec, cell.scheme, config, self.seed, *self._snapshot_args()
            )
        except Exception as err:
            self._attempt_failed(cell, "crash", f"{type(err).__name__}: {err}")
            self._exec.crashes += 1
            self._resolve_unrecovered(cell, report)
            return
        elapsed = perf_counter() - start
        self._exec.simulated += 1
        self._wall.add(elapsed)
        suite.runs[cell.key] = self._record(cell.spec.name, cell.scheme, config, result)
        if recovery == "serial-fallback":
            report.serial_fallbacks += 1
            self._exec.serial_fallbacks += 1
        if cell.errors:
            report.failures.append(
                CellFailure(
                    workload=cell.spec.name,
                    prefetcher=cell.scheme,
                    attempts=cell.attempts,
                    error=cell.errors[-1],
                    recovered=True,
                    recovery=recovery,
                )
            )
        self._log(
            event="cell",
            workload=cell.spec.name,
            prefetcher=cell.scheme,
            status="ok",
            source=recovery or "simulated",
            attempts=cell.attempts + 1,
            wall_time=elapsed,
            error=cell.errors[-1] if cell.errors else None,
            **cell.provenance,
        )
        self._lifecycle(
            "finished",
            cell.spec.name,
            cell.scheme,
            ok=True,
            wall_time=round(elapsed, 6),
        )
