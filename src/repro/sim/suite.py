"""Parallel, persistently-cached (workload × prefetcher) suite sweeps.

:class:`SuiteRunner` is the execution engine behind
:class:`repro.sim.runner.ExperimentRunner`:

* **Parallelism** — cache-missing cells fan out over a
  ``concurrent.futures.ProcessPoolExecutor`` (``jobs`` workers, default
  ``os.cpu_count()``).  Every run is an independent, deterministic
  function of ``(workload, prefetcher, config, seed)``, so parallel and
  serial sweeps produce bit-identical results (asserted by
  ``tests/test_determinism.py``).
* **Persistent caching** — with a ``cache_dir``, results are stored as
  JSON keyed by a complete, auto-derived fingerprint of ``SimConfig``
  (see :mod:`repro.sim.fingerprint`), so re-running a figure after
  touching one prefetcher only re-simulates the affected cells and a
  clean re-run does zero simulation work.

Workers rehydrate workloads by name through the component registry
(:func:`repro.workloads.find_workload`); workload specs whose builders
are picklable are shipped directly, so custom out-of-catalog specs
parallelize too, and anything else transparently runs in-process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..workloads.spec2017 import WorkloadSpec
from .config import SimConfig
from .fingerprint import config_fingerprint, fingerprint_digest
from .metrics import geometric_mean
from .single_core import RunResult, run_single_core

#: Bump when the RunResult schema changes so stale disk entries miss.
CACHE_SCHEMA_VERSION = 1


@dataclasses.dataclass
class SuiteResult:
    """All (workload × prefetcher) runs of one suite sweep."""

    runs: Dict[Tuple[str, str], RunResult] = dataclasses.field(default_factory=dict)

    def run_for(self, workload: str, prefetcher: str) -> RunResult:
        return self.runs[(workload, prefetcher)]

    def speedups(self, prefetcher: str, baseline: str = "none") -> Dict[str, float]:
        """Per-workload IPC speedup of ``prefetcher`` over ``baseline``."""
        out = {}
        for (workload, name), result in self.runs.items():
            if name != prefetcher:
                continue
            base = self.runs[(workload, baseline)]
            if base.ipc > 0:
                out[workload] = result.ipc / base.ipc
        return out

    def geomean_speedup(
        self,
        prefetcher: str,
        workloads: Optional[Iterable[str]] = None,
        baseline: str = "none",
    ) -> float:
        per_workload = self.speedups(prefetcher, baseline)
        if workloads is not None:
            keep = set(workloads)
            per_workload = {k: v for k, v in per_workload.items() if k in keep}
        return geometric_mean(per_workload.values())

    def coverage(self, prefetcher: str, level: str = "l2") -> float:
        """Suite-aggregate miss coverage vs the no-prefetch baseline."""
        baseline_misses = 0
        scheme_misses = 0
        for (workload, name), result in self.runs.items():
            if name != prefetcher:
                continue
            base = self.runs[(workload, "none")]
            if level == "l2":
                baseline_misses += base.l2_misses
                scheme_misses += result.l2_misses
            elif level == "llc":
                baseline_misses += base.llc_misses
                scheme_misses += result.llc_misses
            else:
                raise ValueError(f"unknown level {level!r}")
        if baseline_misses == 0:
            return 0.0
        return (baseline_misses - scheme_misses) / baseline_misses


def _simulate_cell(
    payload: Union[str, WorkloadSpec],
    prefetcher: str,
    config: SimConfig,
    seed: int,
) -> RunResult:
    """One sweep cell, runnable in a worker process.

    ``payload`` is either a picklable :class:`WorkloadSpec` or a
    workload name rehydrated through the registry-backed catalog.
    """
    if isinstance(payload, str):
        from ..workloads import find_workload

        spec = find_workload(payload)
    else:
        spec = payload
    return run_single_core(spec, prefetcher, config, seed=seed)


def _worker_payload(spec: WorkloadSpec) -> Optional[Union[str, WorkloadSpec]]:
    """How to ship one workload to a worker (None: not shippable)."""
    try:
        pickle.dumps(spec)
        return spec
    except Exception:
        pass
    try:
        from ..workloads import find_workload

        find_workload(spec.name)
        return spec.name
    except Exception:
        return None


class SuiteRunner:
    """Parallel sweep executor with in-memory + on-disk result caches."""

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        seed: int = 1,
        jobs: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.config = config or SimConfig.default()
        self.seed = seed
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.memory_cache: Dict[Tuple, RunResult] = {}
        # Observability: how each cell of every sweep so far was served.
        self.simulated = 0
        self.memory_hits = 0
        self.disk_hits = 0

    # -- cache plumbing ---------------------------------------------------------

    def _memory_key(self, workload: str, prefetcher: str, config: SimConfig) -> Tuple:
        return (workload, prefetcher, config_fingerprint(config), self.seed)

    def _disk_path(self, workload: str, prefetcher: str, config: SimConfig) -> Path:
        token = json.dumps(
            [CACHE_SCHEMA_VERSION, workload, prefetcher, fingerprint_digest(config), self.seed]
        )
        digest = hashlib.sha256(token.encode()).hexdigest()[:32]
        assert self.cache_dir is not None
        return self.cache_dir / f"{digest}.json"

    def _disk_load(self, workload: str, prefetcher: str, config: SimConfig) -> Optional[RunResult]:
        if self.cache_dir is None:
            return None
        path = self._disk_path(workload, prefetcher, config)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None  # unreadable/corrupt entry: treat as a miss
        return RunResult(**data)

    def _disk_store(
        self, workload: str, prefetcher: str, config: SimConfig, result: RunResult
    ) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._disk_path(workload, prefetcher, config)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(dataclasses.asdict(result)))
        tmp.replace(path)  # atomic publish; concurrent writers agree on content

    def _lookup(
        self, workload: str, prefetcher: str, config: SimConfig
    ) -> Optional[RunResult]:
        key = self._memory_key(workload, prefetcher, config)
        cached = self.memory_cache.get(key)
        if cached is not None:
            self.memory_hits += 1
            return cached
        cached = self._disk_load(workload, prefetcher, config)
        if cached is not None:
            self.disk_hits += 1
            self.memory_cache[key] = cached
        return cached

    def _record(
        self, workload: str, prefetcher: str, config: SimConfig, result: RunResult
    ) -> RunResult:
        self.memory_cache[self._memory_key(workload, prefetcher, config)] = result
        self._disk_store(workload, prefetcher, config, result)
        return result

    # -- execution ---------------------------------------------------------------

    def single(
        self,
        workload: WorkloadSpec,
        prefetcher: str,
        config: Optional[SimConfig] = None,
    ) -> RunResult:
        """One cell: served from cache or simulated in-process."""
        config = config or self.config
        cached = self._lookup(workload.name, prefetcher, config)
        if cached is not None:
            return cached
        self.simulated += 1
        result = run_single_core(workload, prefetcher, config, seed=self.seed)
        return self._record(workload.name, prefetcher, config, result)

    def sweep(
        self,
        workloads: Sequence[WorkloadSpec],
        prefetchers: Sequence[str],
        config: Optional[SimConfig] = None,
        include_baseline: bool = True,
    ) -> SuiteResult:
        """Run every workload under every scheme (+ the baseline).

        Cache-missing cells are simulated concurrently when ``jobs > 1``;
        results are bit-identical to the serial path because each cell is
        an isolated deterministic simulation.
        """
        config = config or self.config
        names = list(prefetchers)
        if include_baseline and "none" not in names:
            names = ["none"] + names

        suite = SuiteResult()
        pending: List[Tuple[WorkloadSpec, str]] = []
        for spec in workloads:
            for scheme in names:
                cached = self._lookup(spec.name, scheme, config)
                if cached is not None:
                    suite.runs[(spec.name, scheme)] = cached
                else:
                    pending.append((spec, scheme))

        if len(pending) > 1 and self.jobs > 1:
            self._run_parallel(pending, config, suite)
        else:
            for spec, scheme in pending:
                suite.runs[(spec.name, scheme)] = self.single(spec, scheme, config)
        return suite

    def _run_parallel(
        self,
        pending: Sequence[Tuple[WorkloadSpec, str]],
        config: SimConfig,
        suite: SuiteResult,
    ) -> None:
        shippable: List[Tuple[WorkloadSpec, str, Union[str, WorkloadSpec]]] = []
        local: List[Tuple[WorkloadSpec, str]] = []
        for spec, scheme in pending:
            payload = _worker_payload(spec)
            if payload is None:
                local.append((spec, scheme))
            else:
                shippable.append((spec, scheme, payload))

        if shippable:
            workers = min(self.jobs, len(shippable))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    (spec, scheme, pool.submit(_simulate_cell, payload, scheme, config, self.seed))
                    for spec, scheme, payload in shippable
                ]
                for spec, scheme, future in futures:
                    result = future.result()
                    self.simulated += 1
                    suite.runs[(spec.name, scheme)] = self._record(
                        spec.name, scheme, config, result
                    )
        for spec, scheme in local:
            suite.runs[(spec.name, scheme)] = self.single(spec, scheme, config)
