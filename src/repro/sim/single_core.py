"""Single-core simulation driver (§5.3 single-core methodology).

One run = warmup loads (structures train, stats discarded) followed by
measured loads.  The result bundles everything the figures need: IPC,
per-level miss counts, prefetch issue/useful counts and SPP's average
lookahead depth.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..core.ppf import make_ppf_spp
from ..cpu.o3core import O3Core
from ..cpu.trace import TraceRecord
from ..memory.hierarchy import MemoryHierarchy
from ..prefetchers.ampm import AMPM, DAAMPM
from ..prefetchers.base import NullPrefetcher, Prefetcher
from ..prefetchers.bop import BOP
from ..prefetchers.next_line import NextLine
from ..prefetchers.spp import SPP, SPPConfig
from ..prefetchers.stride import StridePrefetcher
from ..prefetchers.vldp import VLDP
from ..workloads.spec2017 import WorkloadSpec
from .config import SimConfig

PrefetcherFactory = Callable[[], Prefetcher]

#: The paper's four evaluated schemes plus baselines (§5.4).
PREFETCHER_FACTORIES: Dict[str, PrefetcherFactory] = {
    "none": NullPrefetcher,
    "next-line": NextLine,
    "stride": StridePrefetcher,
    "vldp": VLDP,
    "ampm": AMPM,
    "da-ampm": DAAMPM,
    "bop": BOP,
    "spp": SPP,
    "ppf": make_ppf_spp,
}


def make_prefetcher(name: str) -> Prefetcher:
    """Instantiate a registered prefetcher by name."""
    try:
        factory = PREFETCHER_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(PREFETCHER_FACTORIES))
        raise KeyError(f"unknown prefetcher {name!r}; known: {known}") from None
    return factory()


@dataclass
class RunResult:
    """Measured outcome of one (workload, prefetcher) run."""

    workload: str
    prefetcher: str
    instructions: int
    cycles: int
    l2_demand_accesses: int
    l2_misses: int
    llc_misses: int
    prefetches_issued: int
    prefetches_useful: int
    prefetch_candidates: int
    dram_accesses: int
    average_lookahead_depth: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def accuracy(self) -> float:
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetches_useful / self.prefetches_issued

    @property
    def l2_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.l2_misses / self.instructions

    @property
    def llc_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.llc_misses / self.instructions


def run_single_core(
    workload: WorkloadSpec,
    prefetcher: Prefetcher | str,
    config: Optional[SimConfig] = None,
    seed: int = 1,
) -> RunResult:
    """Simulate one workload on one core with one prefetching scheme."""
    config = config or SimConfig.default()
    if isinstance(prefetcher, str):
        prefetcher = make_prefetcher(prefetcher)
    hierarchy = MemoryHierarchy(
        num_cores=1,
        config=config.hierarchy,
        dram_config=config.dram,
        prefetchers=[prefetcher],
    )
    core = O3Core(0, hierarchy, config.core)
    trace = workload.trace(config.warmup_records + config.measure_records, seed=seed)

    for rec in itertools.islice(trace, config.warmup_records):
        core.step(rec)
    hierarchy.reset_stats()
    core.begin_measurement()
    for rec in trace:
        core.step(rec)
    core.drain()

    result = core.result()
    l2 = hierarchy.l2[0].stats
    llc = hierarchy.llc.stats
    return RunResult(
        workload=workload.name,
        prefetcher=prefetcher.name,
        instructions=result.instructions,
        cycles=result.cycles,
        l2_demand_accesses=l2.demand_accesses,
        l2_misses=l2.demand_misses,
        llc_misses=llc.demand_misses,
        prefetches_issued=prefetcher.stats.issued,
        prefetches_useful=prefetcher.stats.useful,
        prefetch_candidates=prefetcher.stats.candidates,
        dram_accesses=hierarchy.dram.stats.accesses,
        average_lookahead_depth=getattr(prefetcher, "average_lookahead_depth", 0.0),
    )
