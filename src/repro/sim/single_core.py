"""Single-core simulation driver (§5.3 single-core methodology).

One run = warmup loads (structures train, stats discarded) followed by
measured loads.  The result is a typed view over the hierarchy's stats
snapshot: the named counters every component registered into the stats
tree are captured wholesale (``RunResult.stats``), and the fields the
figures use most are lifted into typed attributes.  New metrics added
anywhere in the stack appear in ``stats`` without touching this module.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Mapping, Optional

from .. import registry
from ..core.ppf import make_ppf_spp  # noqa: F401  (registers "ppf")
from ..cpu.o3core import O3Core
from ..memory.hierarchy import MemoryHierarchy
from ..prefetchers.base import Prefetcher
from ..workloads.spec2017 import WorkloadSpec
from .config import SimConfig

#: Live registry view; kept for backward compatibility with callers
#: that treated the old hardcoded dict as the catalog of schemes.
PREFETCHER_FACTORIES = registry.view("prefetcher")


def make_prefetcher(name: str) -> Prefetcher:
    """Instantiate a registered prefetcher by name."""
    return registry.create("prefetcher", name)


@dataclass
class RunResult:
    """Measured outcome of one (workload, prefetcher) run.

    A typed view over the hierarchy stats snapshot taken at the end of
    the measurement window: the lifted fields below are what the paper's
    figures consume; the full flattened tree (every cache, the DRAM
    row buffer, the perceptron filter, PPF's tables…) rides along in
    ``stats`` under dotted paths like ``core0.l2.demand_misses``.
    """

    workload: str
    prefetcher: str
    instructions: int
    cycles: int
    l2_demand_accesses: int
    l2_misses: int
    llc_misses: int
    prefetches_issued: int
    prefetches_useful: int
    prefetch_candidates: int
    dram_accesses: int
    average_lookahead_depth: float = 0.0
    core: int = 0
    extra: Dict[str, float] = field(default_factory=dict)
    stats: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_snapshot(
        cls,
        workload: str,
        prefetcher: str,
        instructions: int,
        cycles: int,
        snapshot: Mapping[str, float],
        average_lookahead_depth: float = 0.0,
        core: int = 0,
    ) -> "RunResult":
        """Build the typed view for one core from a stats snapshot."""
        prefix = f"core{core}"
        get = snapshot.get
        return cls(
            workload=workload,
            prefetcher=prefetcher,
            instructions=instructions,
            cycles=cycles,
            l2_demand_accesses=int(get(f"{prefix}.l2.demand_accesses", 0)),
            l2_misses=int(get(f"{prefix}.l2.demand_misses", 0)),
            llc_misses=int(get("llc.demand_misses", 0)),
            prefetches_issued=int(get(f"{prefix}.prefetcher.prefetch.issued", 0)),
            prefetches_useful=int(get(f"{prefix}.prefetcher.prefetch.useful", 0)),
            prefetch_candidates=int(get(f"{prefix}.prefetcher.prefetch.candidates", 0)),
            dram_accesses=int(get("dram.accesses", 0)),
            average_lookahead_depth=average_lookahead_depth,
            core=core,
            stats=dict(snapshot),
        )

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def accuracy(self) -> float:
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetches_useful / self.prefetches_issued

    @property
    def l2_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.l2_misses / self.instructions

    @property
    def llc_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.llc_misses / self.instructions

    # -- one-line views over the snapshot --------------------------------------

    @property
    def row_buffer_hit_rate(self) -> float:
        """DRAM open-row hit rate over the measurement window."""
        return float(self.stats.get("dram.row_hit_rate", 0.0))

    @property
    def reject_table_recoveries(self) -> int:
        """PPF false negatives recovered through the Reject Table."""
        return int(self.stats.get(f"core{self.core}.prefetcher.ppf.reject_recoveries", 0))

    @cached_property
    def per_feature_training_updates(self) -> Dict[str, int]:
        """Effective weight movements per perceptron feature table.

        Cached on the instance: the snapshot is immutable once the run
        ends, and callers (plots, ablation reports) read this per
        feature, so rescanning the full stats dict each time is waste.
        """
        prefix = f"core{self.core}.prefetcher.filter.per_feature_updates."
        return {
            key[len(prefix):]: int(value)
            for key, value in self.stats.items()
            if key.startswith(prefix)
        }


def run_single_core(
    workload: WorkloadSpec,
    prefetcher: Prefetcher | str,
    config: Optional[SimConfig] = None,
    seed: int = 1,
) -> RunResult:
    """Simulate one workload on one core with one prefetching scheme."""
    config = config or SimConfig.default()
    if isinstance(prefetcher, str):
        prefetcher = make_prefetcher(prefetcher)
    hierarchy = MemoryHierarchy(
        num_cores=1,
        config=config.hierarchy,
        dram_config=config.dram,
        prefetchers=[prefetcher],
    )
    core = O3Core(0, hierarchy, config.core)
    trace = workload.trace(config.warmup_records + config.measure_records, seed=seed)

    for rec in itertools.islice(trace, config.warmup_records):
        core.step(rec)
    hierarchy.reset_stats()
    core.begin_measurement()
    for rec in trace:
        core.step(rec)
    core.drain()

    result = core.result()
    return RunResult.from_snapshot(
        workload=workload.name,
        prefetcher=prefetcher.name,
        instructions=result.instructions,
        cycles=result.cycles,
        snapshot=hierarchy.snapshot(),
        average_lookahead_depth=getattr(prefetcher, "average_lookahead_depth", 0.0),
    )
