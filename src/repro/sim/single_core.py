"""Single-core simulation driver (§5.3 single-core methodology).

One run = warmup loads (structures train, stats discarded) followed by
measured loads.  The result is a typed view over the hierarchy's stats
snapshot: the named counters every component registered into the stats
tree are captured wholesale (``RunResult.stats``), and the fields the
figures use most are lifted into typed attributes.  New metrics added
anywhere in the stack appear in ``stats`` without touching this module.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Dict, Mapping, Optional

from .. import registry
from ..checkpoint import (
    KIND_SINGLE_CORE,
    Snapshot,
    SnapshotError,
    SnapshotStore,
    load_snapshot,
    save_snapshot,
)
from ..core.ppf import make_ppf_spp  # noqa: F401  (registers "ppf")
from ..cpu.o3core import O3Core
from ..engine import make_engine
from ..memory.hierarchy import MemoryHierarchy
from ..prefetchers.base import Prefetcher
from ..telemetry.probes import ProbeSet
from ..telemetry.session import _UNSET, Telemetry
from ..telemetry.session import resolve as _resolve_telemetry
from ..workloads.spec2017 import WorkloadSpec
from ..zoo.filtered import FILTER_SPEC_PREFIX, make_filtered  # registers the zoo
from .config import SimConfig
from .fingerprint import fingerprint_digest

#: Live registry view; kept for backward compatibility with callers
#: that treated the old hardcoded dict as the catalog of schemes.
PREFETCHER_FACTORIES = registry.view("prefetcher")


def make_prefetcher(name: str) -> Prefetcher:
    """Instantiate a prefetcher by name or ``filtered:<inner>`` spec.

    The single chokepoint every driver (CLI, suite workers, farm
    workers, checkpoints) resolves prefetchers through — which is why
    the filter seam lives here: a ``filtered:`` spec rehydrates
    identically in any process.
    """
    if name.startswith(FILTER_SPEC_PREFIX):
        return make_filtered(name[len(FILTER_SPEC_PREFIX):])
    return registry.create("prefetcher", name)


@dataclass
class RunResult:
    """Measured outcome of one (workload, prefetcher) run.

    A typed view over the hierarchy stats snapshot taken at the end of
    the measurement window: the lifted fields below are what the paper's
    figures consume; the full flattened tree (every cache, the DRAM
    row buffer, the perceptron filter, PPF's tables…) rides along in
    ``stats`` under dotted paths like ``core0.l2.demand_misses``.
    """

    workload: str
    prefetcher: str
    instructions: int
    cycles: int
    l2_demand_accesses: int
    l2_misses: int
    llc_misses: int
    prefetches_issued: int
    prefetches_useful: int
    prefetch_candidates: int
    dram_accesses: int
    average_lookahead_depth: float = 0.0
    core: int = 0
    extra: Dict[str, float] = field(default_factory=dict)
    stats: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_snapshot(
        cls,
        workload: str,
        prefetcher: str,
        instructions: int,
        cycles: int,
        snapshot: Mapping[str, float],
        average_lookahead_depth: float = 0.0,
        core: int = 0,
    ) -> "RunResult":
        """Build the typed view for one core from a stats snapshot."""
        prefix = f"core{core}"
        get = snapshot.get
        return cls(
            workload=workload,
            prefetcher=prefetcher,
            instructions=instructions,
            cycles=cycles,
            l2_demand_accesses=int(get(f"{prefix}.l2.demand_accesses", 0)),
            l2_misses=int(get(f"{prefix}.l2.demand_misses", 0)),
            llc_misses=int(get("llc.demand_misses", 0)),
            prefetches_issued=int(get(f"{prefix}.prefetcher.prefetch.issued", 0)),
            prefetches_useful=int(get(f"{prefix}.prefetcher.prefetch.useful", 0)),
            prefetch_candidates=int(get(f"{prefix}.prefetcher.prefetch.candidates", 0)),
            dram_accesses=int(get("dram.accesses", 0)),
            average_lookahead_depth=average_lookahead_depth,
            core=core,
            stats=dict(snapshot),
        )

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def accuracy(self) -> float:
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetches_useful / self.prefetches_issued

    @property
    def l2_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.l2_misses / self.instructions

    @property
    def llc_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.llc_misses / self.instructions

    # -- one-line views over the snapshot --------------------------------------

    @property
    def row_buffer_hit_rate(self) -> float:
        """DRAM open-row hit rate over the measurement window."""
        return float(self.stats.get("dram.row_hit_rate", 0.0))

    @property
    def reject_table_recoveries(self) -> int:
        """PPF false negatives recovered through the Reject Table."""
        return int(self.stats.get(f"core{self.core}.prefetcher.ppf.reject_recoveries", 0))

    @cached_property
    def per_feature_training_updates(self) -> Dict[str, int]:
        """Effective weight movements per perceptron feature table.

        Cached on the instance: the snapshot is immutable once the run
        ends, and callers (plots, ablation reports) read this per
        feature, so rescanning the full stats dict each time is waste.
        """
        prefix = f"core{self.core}.prefetcher.filter.per_feature_updates."
        return {
            key[len(prefix):]: int(value)
            for key, value in self.stats.items()
            if key.startswith(prefix)
        }


def warmup_digest(
    workload: str, prefetcher: str, config: SimConfig, seed: int
) -> str:
    """Content address of a warmup-boundary snapshot.

    ``measure_records`` is normalized out of the config fingerprint:
    warmup state depends only on the warmup prefix, so sweep cells that
    differ solely in measurement length share one warmup snapshot —
    that sharing is the whole speedup.  The checkpoint schema version is
    already folded into the fingerprint itself.
    """
    warmup_config = dataclasses.replace(config, measure_records=0)
    token = json.dumps(
        ["warmup", workload, prefetcher, fingerprint_digest(warmup_config), seed]
    )
    return hashlib.sha256(token.encode("utf-8")).hexdigest()[:32]


class SingleCoreSim:
    """One (workload, prefetcher) simulation with explicit phases.

    Splits :func:`run_single_core`'s straight-line body into
    ``warmup()`` / ``begin_measurement()`` / ``measure()`` / ``result()``
    so a snapshot can be taken (or restored) at any record boundary:
    ``state_dict()`` composes the trace stream, the core and the whole
    hierarchy; ``load_state()`` on a freshly constructed sim — in any
    process — lands it in a bit-identical position.
    """

    def __init__(
        self,
        workload: WorkloadSpec,
        prefetcher: Prefetcher | str,
        config: Optional[SimConfig] = None,
        seed: int = 1,
    ) -> None:
        self.config = config or SimConfig.default()
        if isinstance(prefetcher, str):
            prefetcher = make_prefetcher(prefetcher)
        self.workload = workload
        self.prefetcher = prefetcher
        self.seed = seed
        self.hierarchy = MemoryHierarchy(
            num_cores=1,
            config=self.config.hierarchy,
            dram_config=self.config.dram,
            prefetchers=[prefetcher],
        )
        self.core = O3Core(0, self.hierarchy, self.config.core)
        self.trace = workload.trace(
            self.config.warmup_records + self.config.measure_records, seed=seed
        )
        #: The driver for the per-access loop (``config.engine``); every
        #: phase advances through it, so scalar/batched is a pure seam.
        self._engine = make_engine(self.config)
        #: Records stepped so far (the warmup/measure phase cursor).
        self.consumed = 0
        #: True once the stats were reset at the warmup boundary.
        self.measuring = False
        #: Active telemetry session and its probes; ``None`` keeps every
        #: phase on the untouched fast path (see ``advance``).
        self._telemetry: Optional[Telemetry] = None
        self._probe_set: Optional[ProbeSet] = None

    @property
    def total_records(self) -> int:
        return self.config.warmup_records + self.config.measure_records

    # -- telemetry -------------------------------------------------------------

    def attach_telemetry(
        self, session: Optional[Telemetry], label: Optional[str] = None
    ) -> Optional[ProbeSet]:
        """Record this sim's phases and probe samples into ``session``.

        Discovers every applicable registered probe, mounts their
        bookkeeping under ``telemetry.`` in the stats tree, and switches
        ``advance`` onto its instrumented branch.  Probes are strictly
        read-only and sampling happens *between* trace records, so an
        instrumented run's simulation state — and every non-``telemetry``
        stats key — is bit-identical with an uninstrumented one.
        """
        if session is None or not session.enabled:
            return None
        self._telemetry = session
        self._probe_set = session.attach(
            label or f"{self.workload.name}/{self.prefetcher.name}", self
        )
        self.hierarchy.stats.attach("telemetry", self._probe_set.stats_adapter())
        tracer = session.tracer
        if tracer.enabled:
            tracer.instant(
                "run_begin",
                float(self.core.cycle),
                args={
                    "workload": self.workload.name,
                    "prefetcher": self.prefetcher.name,
                    "seed": self.seed,
                },
            )
        return self._probe_set

    def advance(self, n_records: int) -> int:
        """Step up to ``n_records`` more trace records."""
        if n_records <= 0:
            return 0
        if self._telemetry is not None:
            return self._advance_instrumented(n_records)
        return self._engine.advance(self, n_records)

    def _advance_instrumented(self, n_records: int) -> int:
        """The traced twin of ``advance``: same stepping, plus sampling.

        Delegates the identical record stepping to the engine in chunks
        aligned to the session's ``probe_every`` cadence and samples
        every probe at each boundary, stamped with the simulated cycle.
        Engines flush all state before returning from ``advance`` (the
        seam contract), so probes see exactly what the uninstrumented
        run's machine state would be at the same record count — under
        the batched engine this is the chunk-boundary sampling shim: no
        per-access Python callbacks, probes fire between engine chunks.
        """
        session = self._telemetry
        probe_set = self._probe_set
        tracer = session.tracer
        every = session.probe_every
        engine_advance = self._engine.advance
        total_taken = 0
        remaining = n_records
        while remaining > 0:
            to_boundary = every - (self.consumed % every)
            chunk = to_boundary if to_boundary < remaining else remaining
            taken = engine_advance(self, chunk)
            total_taken += taken
            remaining -= taken
            if taken < chunk:
                break  # trace exhausted
            if probe_set is not None and self.consumed % every == 0:
                probe_set.sample(float(self.core.cycle), tracer)
        return total_taken

    def warmup(self) -> None:
        if self._telemetry is None:
            self.advance(self.config.warmup_records - self.consumed)
            return
        start = self.core.cycle
        self.advance(self.config.warmup_records - self.consumed)
        tracer = self._telemetry.tracer
        if tracer.enabled:
            tracer.complete(
                "warmup",
                float(start),
                float(self.core.cycle - start),
                args={"records": self.consumed},
            )

    def begin_measurement(self) -> None:
        self.hierarchy.reset_stats()
        self.core.begin_measurement()
        self.measuring = True
        if self._telemetry is not None and self._telemetry.tracer.enabled:
            self._telemetry.tracer.instant(
                "measure_begin", float(self.core.cycle), args={"consumed": self.consumed}
            )

    def measure(self) -> None:
        """Run the remaining records and drain outstanding loads."""
        if self._telemetry is None:
            self.advance(self.total_records - self.consumed)
            self.core.drain()
            return
        start = self.core.cycle
        self.advance(self.total_records - self.consumed)
        self.core.drain()
        tracer = self._telemetry.tracer
        if tracer.enabled:
            tracer.complete(
                "measure",
                float(start),
                float(self.core.cycle - start),
                args={"records": self.consumed},
            )

    def result(self) -> RunResult:
        core_result = self.core.result()
        return RunResult.from_snapshot(
            workload=self.workload.name,
            prefetcher=self.prefetcher.name,
            instructions=core_result.instructions,
            cycles=core_result.cycles,
            snapshot=self.hierarchy.snapshot(),
            average_lookahead_depth=getattr(
                self.prefetcher, "average_lookahead_depth", 0.0
            ),
        )

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        trace_state = getattr(self.trace, "state_dict", None)
        if trace_state is None:
            raise SnapshotError(
                f"trace of workload {self.workload.name!r} is not checkpointable"
            )
        return {
            "workload": self.workload.name,
            "prefetcher": self.prefetcher.name,
            "seed": self.seed,
            "consumed": self.consumed,
            "measuring": self.measuring,
            "trace": trace_state(),
            "core": self.core.state_dict(),
            "hierarchy": self.hierarchy.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        for key, expect in (
            ("workload", self.workload.name),
            ("prefetcher", self.prefetcher.name),
            ("seed", self.seed),
        ):
            if state.get(key) != expect:
                raise SnapshotError(
                    f"snapshot {key}={state.get(key)!r} does not match sim {expect!r}"
                )
        self.trace.load_state(state["trace"])
        self.core.load_state(state["core"])
        self.hierarchy.load_state(state["hierarchy"])
        self.consumed = int(state["consumed"])
        self.measuring = bool(state["measuring"])

    def snapshot(self, phase: str) -> Snapshot:
        return Snapshot(
            kind=KIND_SINGLE_CORE,
            payload=self.state_dict(),
            meta={
                "workload": self.workload.name,
                "prefetcher": self.prefetcher.name,
                "seed": self.seed,
                "phase": phase,
                "consumed": self.consumed,
                "warmup_records": self.config.warmup_records,
                "measure_records": self.config.measure_records,
                "config_fingerprint": fingerprint_digest(self.config),
            },
        )


def _try_restore(sim: SingleCoreSim, snapshot: Optional[Snapshot]) -> bool:
    """Apply a snapshot if possible; any failure leaves state untouched
    logically (the caller rebuilds a fresh sim) and reports False."""
    if snapshot is None or snapshot.kind != KIND_SINGLE_CORE:
        return False
    try:
        sim.load_state(snapshot.payload)
    except (SnapshotError, KeyError, ValueError, TypeError, IndexError):
        return False
    return True


def run_single_core(
    workload: WorkloadSpec,
    prefetcher: Prefetcher | str,
    config: Optional[SimConfig] = None,
    seed: int = 1,
    *,
    warmup_store: Optional[SnapshotStore] = None,
    checkpoint_path: Optional[Path | str] = None,
    checkpoint_every: Optional[int] = None,
    telemetry: Optional[Telemetry] = _UNSET,
) -> RunResult:
    """Simulate one workload on one core with one prefetching scheme.

    ``warmup_store`` enables warmup snapshot reuse: if a snapshot exists
    for this (workload, scheme, warmup-config, seed) it is restored in
    place of simulating warmup, otherwise warmup runs and the snapshot is
    published for the next cell.  ``checkpoint_path``/``checkpoint_every``
    add periodic mid-measurement checkpoints (and restore-on-entry),
    giving sweeps crash-resume at record granularity.  Both engage only
    for registry-named schemes — a caller passing a live prefetcher
    instance owns that instance's state.

    ``telemetry`` selects a recording session: omitted, the process's
    active session (``repro.telemetry.activate``) is used if one exists;
    an explicit ``None`` forces telemetry off regardless — sweep workers
    rely on that so cached cell results never carry trace state.  The
    disabled path does not install a tracer at all, so the per-record
    loop stays bit-for-bit the PR 3 hot path.

    Restores are bit-identical: every path through here reproduces the
    straight run's stats exactly.
    """
    config = config or SimConfig.default()
    session = _resolve_telemetry(telemetry)
    scheme = prefetcher if isinstance(prefetcher, str) else None
    sim = SingleCoreSim(workload, prefetcher, config, seed)

    restored = False
    if scheme is not None and checkpoint_path is not None:
        checkpoint_path = Path(checkpoint_path)
        if checkpoint_path.exists():
            try:
                snapshot = load_snapshot(checkpoint_path)
            except SnapshotError:
                snapshot = None
            restored = _try_restore(sim, snapshot)
            if snapshot is not None and not restored:
                # Unusable leftover (corrupt or mismatched): start clean.
                sim = SingleCoreSim(workload, scheme, config, seed)

    save_warmup = False
    if not restored and scheme is not None and warmup_store is not None:
        if config.warmup_records > 0:
            digest = warmup_digest(workload.name, scheme, config, seed)
            restored = _try_restore(sim, warmup_store.load(digest))
            if not restored:
                sim = SingleCoreSim(workload, scheme, config, seed)
                save_warmup = True

    if session is not None:
        sim.attach_telemetry(session)
        if restored and session.tracer.enabled:
            session.tracer.instant(
                "restored", float(sim.core.cycle), args={"consumed": sim.consumed}
            )

    if not sim.measuring:
        sim.warmup()
        if save_warmup:
            warmup_store.save(digest, sim.snapshot("warmup"))
        sim.begin_measurement()

    if scheme is not None and checkpoint_path is not None and checkpoint_every:
        while sim.consumed < sim.total_records:
            sim.advance(min(checkpoint_every, sim.total_records - sim.consumed))
            if sim.consumed < sim.total_records:
                save_snapshot(checkpoint_path, sim.snapshot("measure"))
                if session is not None and session.tracer.enabled:
                    session.tracer.instant(
                        "checkpoint_save",
                        float(sim.core.cycle),
                        args={"consumed": sim.consumed},
                    )
        sim.core.drain()
    else:
        sim.measure()
    return sim.result()
