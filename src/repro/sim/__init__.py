"""Simulation drivers, configuration and metrics."""

from .config import SimConfig
from .metrics import (
    accuracy,
    coverage,
    geometric_mean,
    mpki,
    percent_gain,
    speedup,
    summarize_speedups,
    weighted_ipc,
    weighted_speedup,
)
from .fingerprint import config_fingerprint, fingerprint_digest
from .multi_core import CoreOutcome, MultiCoreResult, run_multi_core
from .runner import ExperimentRunner
from .single_core import (
    PREFETCHER_FACTORIES,
    RunResult,
    make_prefetcher,
    run_single_core,
)
from .suite import (
    CellFailure,
    CellPolicy,
    DegradedSweepError,
    FailureReport,
    RunLedger,
    SuiteResult,
    SuiteRunner,
)

__all__ = [
    "CellFailure",
    "CellPolicy",
    "DegradedSweepError",
    "FailureReport",
    "RunLedger",
    "SimConfig",
    "accuracy",
    "coverage",
    "geometric_mean",
    "mpki",
    "percent_gain",
    "speedup",
    "summarize_speedups",
    "weighted_ipc",
    "weighted_speedup",
    "CoreOutcome",
    "MultiCoreResult",
    "run_multi_core",
    "config_fingerprint",
    "fingerprint_digest",
    "ExperimentRunner",
    "SuiteResult",
    "SuiteRunner",
    "PREFETCHER_FACTORIES",
    "RunResult",
    "make_prefetcher",
    "run_single_core",
]
