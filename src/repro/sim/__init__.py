"""Simulation drivers, configuration and metrics."""

from .config import SimConfig
from .metrics import (
    accuracy,
    coverage,
    geometric_mean,
    mpki,
    percent_gain,
    speedup,
    summarize_speedups,
    weighted_ipc,
    weighted_speedup,
)
from .multi_core import CoreOutcome, MultiCoreResult, run_multi_core
from .runner import ExperimentRunner, SuiteResult
from .single_core import (
    PREFETCHER_FACTORIES,
    RunResult,
    make_prefetcher,
    run_single_core,
)

__all__ = [
    "SimConfig",
    "accuracy",
    "coverage",
    "geometric_mean",
    "mpki",
    "percent_gain",
    "speedup",
    "summarize_speedups",
    "weighted_ipc",
    "weighted_speedup",
    "CoreOutcome",
    "MultiCoreResult",
    "run_multi_core",
    "ExperimentRunner",
    "SuiteResult",
    "PREFETCHER_FACTORIES",
    "RunResult",
    "make_prefetcher",
    "run_single_core",
]
