"""Top-level simulation configuration (paper Table 1 + §5.2 variants)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..cpu.o3core import CoreConfig
from ..memory.dram import DRAMConfig
from ..memory.hierarchy import HierarchyConfig


@dataclass
class SimConfig:
    """Everything a run needs besides the workload and the prefetcher."""

    core: CoreConfig = field(default_factory=CoreConfig.default)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig.default)
    dram: DRAMConfig = field(default_factory=DRAMConfig.default)
    warmup_records: int = 20_000
    measure_records: int = 100_000
    #: Simulation engine driving the access loop ("scalar" or "batched",
    #: resolved through the registry).  The scalar engine is the
    #: golden-stats oracle; the batched engine chunks the trace and runs
    #: a fused per-record kernel (see docs/performance.md).
    engine: str = "scalar"
    #: Records per chunk pulled by the batched engine.  Irrelevant to
    #: results (the engines are event-order equivalent) — only a
    #: throughput/telemetry-granularity knob.
    engine_chunk: int = 4_096
    #: Cap on the records one core may run inside a single scheduling
    #: turn of the batched multi-core advance (0 = uncapped).  The cycle
    #: bound that preserves the shared-resource interleaving is computed
    #: per turn regardless, so — like ``engine_chunk`` — this is a pure
    #: throughput/latency knob that cannot perturb results: a core cut
    #: short by the cap is still the schedule's minimum and is re-picked
    #: on the next turn.
    engine_quantum: int = 4_096
    #: Content digests of the file-backed traces this run consumes
    #: (sorted; empty for synthetic workloads).  Folded into
    #: ``config_fingerprint`` automatically, so result caches, warmup
    #: stores and ledgers keyed on the fingerprint can never mix
    #: versions of a trace file: new bytes, new digest, new keys.  The
    #: CLI's ``sweep --trace-file`` populates it; the digest also rides
    #: every file-backed workload's *name* (see
    #: :func:`repro.traces.trace_workload`), which covers per-cell keys.
    trace_digests: Tuple[str, ...] = ()

    @classmethod
    def default(cls) -> "SimConfig":
        """Single-core default: 2 MB LLC, 12.8 GB/s DRAM (§5.2)."""
        return cls()

    @classmethod
    def small_llc(cls) -> "SimConfig":
        """DPC-2 constraint study: LLC reduced to 512 KB (§5.2)."""
        return cls(hierarchy=HierarchyConfig.small_llc())

    @classmethod
    def low_bandwidth(cls) -> "SimConfig":
        """DPC-2 constraint study: DRAM limited to 3.2 GB/s (§5.2)."""
        return cls(dram=DRAMConfig.low_bandwidth())

    @classmethod
    def multicore(cls, cores: int) -> "SimConfig":
        """Multi-core default: 2 MB LLC per core, shared channels."""
        return cls(dram=DRAMConfig.multicore(cores))

    @classmethod
    def quick(cls, measure_records: int = 20_000, warmup_records: int = 5_000) -> "SimConfig":
        """Short runs for tests and smoke benches."""
        return cls(warmup_records=warmup_records, measure_records=measure_records)

    def describe(self) -> List[Tuple[str, str]]:
        """Human-readable parameter dump (the Table 1 reproduction)."""
        h = self.hierarchy
        d = self.dram
        c = self.core
        bandwidth_gbps = 64 * 4.0 / d.cycles_per_transfer  # 4 GHz core clock
        return [
            ("Core", f"{c.width}-wide OoO model, ROB {c.rob_size}, {c.mlp_limit} MSHRs"),
            ("L1D", f"{h.l1_size // 1024} KB, {h.l1_assoc}-way, {h.l1_latency}-cycle"),
            ("L2", f"{h.l2_size // 1024} KB, {h.l2_assoc}-way, {h.l2_latency}-cycle"),
            (
                "LLC",
                f"{h.llc_size_per_core // 1024} KB/core, {h.llc_assoc}-way, "
                f"{h.llc_latency}-cycle, shared",
            ),
            (
                "DRAM",
                f"{d.channels} channel(s), {bandwidth_gbps:.1f} GB/s/channel, "
                f"row hit/miss {d.row_hit_latency}/{d.row_miss_latency} cycles",
            ),
            ("Block size", "64 B"),
            ("Page size", "4 KB"),
            ("Replacement", "LRU at all levels"),
            ("Prefetch trigger", "L2 demand accesses only; fills to L2 or LLC"),
            ("Warmup / measure", f"{self.warmup_records} / {self.measure_records} loads"),
        ]
