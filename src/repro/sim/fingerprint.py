"""Complete, auto-derived fingerprints of simulation configurations.

The old ``_config_key`` hand-listed ten of ``SimConfig``'s fields, so
two configs differing in any *other* field (associativities, latencies,
prefetch queue size, DRAM row-buffer timing …) silently collided in the
result cache.  This module walks the dataclass tree instead: every
field of every nested dataclass contributes, so adding a parameter to
any config automatically extends the fingerprint.

:func:`config_fingerprint` produces a stable, hashable nested tuple
(usable as an in-memory cache key); :func:`fingerprint_digest` reduces
it to a short hex string (usable as an on-disk cache filename).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Tuple

from ..checkpoint.schema import CHECKPOINT_SCHEMA_VERSION
from ..telemetry import schema as telemetry_schema


def value_fingerprint(value: Any) -> Any:
    """A stable, hashable token for one config value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return tuple(
            (f.name, value_fingerprint(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
    if isinstance(value, dict):
        return tuple(
            (value_fingerprint(k), value_fingerprint(v))
            for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
    if isinstance(value, (list, tuple)):
        return tuple(value_fingerprint(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(value_fingerprint(item) for item in value))
    if isinstance(value, (bool, int, float, str, bytes)) or value is None:
        return value
    if callable(value):
        # Factories/builders: identity by qualified name, not address.
        return f"{getattr(value, '__module__', '?')}.{getattr(value, '__qualname__', repr(value))}"
    return repr(value)


def config_fingerprint(config: Any) -> Tuple:
    """Every field of a (nested) dataclass config, as a stable tuple.

    The checkpoint and telemetry schema versions participate: a schema
    bump changes every fingerprint, so result caches, warmup stores and
    ledgers from pre-bump builds invalidate together instead of
    colliding with artifacts whose snapshot payloads (or recorded trace
    artifacts) no longer load.  The telemetry version is read off the
    module at call time so tests can exercise the invalidation.
    """
    if not dataclasses.is_dataclass(config):
        raise TypeError(f"expected a dataclass config, got {type(config).__name__}")
    return (
        type(config).__name__,
        ("checkpoint_schema", CHECKPOINT_SCHEMA_VERSION),
        ("telemetry_schema", telemetry_schema.TELEMETRY_SCHEMA_VERSION),
        value_fingerprint(config),
    )


def fingerprint_digest(config: Any) -> str:
    """A short stable hex digest of :func:`config_fingerprint`."""
    blob = repr(config_fingerprint(config)).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def token_digest(*parts: Any, length: int = 32) -> str:
    """A short stable hex digest of a JSON-encodable token list.

    The shared key recipe behind every content-addressed artifact that
    is named by *coordinates* rather than by config alone: result-cache
    entries, per-cell checkpoints, and farm queue cell ids all reduce a
    list of primitives to one hex name through this function, so any two
    subsystems that agree on the parts agree on the address.
    """
    blob = json.dumps(list(parts)).encode()
    return hashlib.sha256(blob).hexdigest()[:length]


def cell_digest(workload: str, prefetcher: str, config: Any, seed: int) -> str:
    """Content address of one sweep cell.

    Keys the cell's periodic mid-measure checkpoint in the snapshot
    store and its ticket/claim/result files in a farm work queue —
    because the digest folds in :func:`fingerprint_digest`, two sweeps
    over different configs can share one queue directory without their
    cells colliding.
    """
    return token_digest("cell", workload, prefetcher, fingerprint_digest(config), seed)
