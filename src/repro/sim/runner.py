"""Experiment orchestration with result caching.

The figures re-use many runs (every speedup needs the no-prefetch
baseline; every weighted-IPC needs isolated runs), so the runner caches
:func:`run_single_core` results by (workload, prefetcher, config
fingerprint, seed) and exposes the aggregate computations the paper
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..memory.hierarchy import HierarchyConfig
from ..workloads.mixes import WorkloadMix
from ..workloads.spec2017 import WorkloadSpec
from .config import SimConfig
from .metrics import geometric_mean, weighted_ipc
from .multi_core import MultiCoreResult, run_multi_core
from .single_core import RunResult, run_single_core


def _config_key(config: SimConfig) -> Tuple:
    h, d = config.hierarchy, config.dram
    return (
        h.l1_size, h.l2_size, h.llc_size_per_core, h.llc_assoc,
        d.channels, d.cycles_per_transfer,
        config.warmup_records, config.measure_records,
        config.core.rob_size, config.core.mlp_limit,
    )


@dataclass
class SuiteResult:
    """All (workload × prefetcher) runs of one suite sweep."""

    runs: Dict[Tuple[str, str], RunResult] = field(default_factory=dict)

    def run_for(self, workload: str, prefetcher: str) -> RunResult:
        return self.runs[(workload, prefetcher)]

    def speedups(self, prefetcher: str, baseline: str = "none") -> Dict[str, float]:
        """Per-workload IPC speedup of ``prefetcher`` over ``baseline``."""
        out = {}
        for (workload, name), result in self.runs.items():
            if name != prefetcher:
                continue
            base = self.runs[(workload, baseline)]
            if base.ipc > 0:
                out[workload] = result.ipc / base.ipc
        return out

    def geomean_speedup(
        self,
        prefetcher: str,
        workloads: Optional[Iterable[str]] = None,
        baseline: str = "none",
    ) -> float:
        per_workload = self.speedups(prefetcher, baseline)
        if workloads is not None:
            keep = set(workloads)
            per_workload = {k: v for k, v in per_workload.items() if k in keep}
        return geometric_mean(per_workload.values())

    def coverage(self, prefetcher: str, level: str = "l2") -> float:
        """Suite-aggregate miss coverage vs the no-prefetch baseline."""
        baseline_misses = 0
        scheme_misses = 0
        for (workload, name), result in self.runs.items():
            if name != prefetcher:
                continue
            base = self.runs[(workload, "none")]
            if level == "l2":
                baseline_misses += base.l2_misses
                scheme_misses += result.l2_misses
            elif level == "llc":
                baseline_misses += base.llc_misses
                scheme_misses += result.llc_misses
            else:
                raise ValueError(f"unknown level {level!r}")
        if baseline_misses == 0:
            return 0.0
        return (baseline_misses - scheme_misses) / baseline_misses


class ExperimentRunner:
    """Caching front end over the single- and multi-core drivers."""

    def __init__(self, config: Optional[SimConfig] = None, seed: int = 1) -> None:
        self.config = config or SimConfig.default()
        self.seed = seed
        self._single_cache: Dict[Tuple, RunResult] = {}

    # -- single core ------------------------------------------------------------

    def single(
        self,
        workload: WorkloadSpec,
        prefetcher: str,
        config: Optional[SimConfig] = None,
    ) -> RunResult:
        config = config or self.config
        key = (workload.name, prefetcher, _config_key(config), self.seed)
        cached = self._single_cache.get(key)
        if cached is None:
            cached = run_single_core(workload, prefetcher, config, seed=self.seed)
            self._single_cache[key] = cached
        return cached

    def sweep(
        self,
        workloads: Sequence[WorkloadSpec],
        prefetchers: Sequence[str],
        config: Optional[SimConfig] = None,
        include_baseline: bool = True,
    ) -> SuiteResult:
        """Run every workload under every scheme (+ the baseline)."""
        names = list(prefetchers)
        if include_baseline and "none" not in names:
            names = ["none"] + names
        suite = SuiteResult()
        for workload in workloads:
            for prefetcher in names:
                suite.runs[(workload.name, prefetcher)] = self.single(
                    workload, prefetcher, config
                )
        return suite

    # -- multi core -------------------------------------------------------------

    def _isolated_config(self, mix_config: SimConfig, cores: int) -> SimConfig:
        """Isolated runs use the *full* shared LLC (§5.3: 1-core 8 MB)."""
        hierarchy = replace(
            mix_config.hierarchy,
            llc_size_per_core=mix_config.hierarchy.llc_size_per_core * cores,
        )
        return replace(mix_config, hierarchy=hierarchy)

    def isolated_ipc(
        self, workload: WorkloadSpec, prefetcher: str, mix_config: SimConfig, cores: int
    ) -> float:
        config = self._isolated_config(mix_config, cores)
        return self.single(workload, prefetcher, config).ipc

    def mix_weighted_speedup(
        self,
        mix: WorkloadMix,
        prefetcher: str,
        config: Optional[SimConfig] = None,
        baseline: str = "none",
    ) -> float:
        """Weighted-IPC speedup of one mix, normalized to ``baseline``.

        Per-core IPCs are weighted by the *no-prefetching* isolated run
        of the same workload (1 core, full shared LLC).  A fixed
        denominator keeps the metric a throughput measure: weighting
        each scheme by its own isolated IPC would penalize exactly the
        schemes that prefetch well.
        """
        config = config or SimConfig.multicore(mix.cores)
        scheme = run_multi_core(mix, prefetcher, config, seed=self.seed)
        base = run_multi_core(mix, baseline, config, seed=self.seed)
        isolated = [
            self.isolated_ipc(spec, baseline, config, mix.cores)
            for spec in mix.workloads
        ]
        scheme_w = weighted_ipc(scheme.per_core_ipc, isolated)
        base_w = weighted_ipc(base.per_core_ipc, isolated)
        return scheme_w / base_w

    def mix_sweep(
        self,
        mixes: Sequence[WorkloadMix],
        prefetchers: Sequence[str],
        config: Optional[SimConfig] = None,
    ) -> Dict[str, List[float]]:
        """Weighted speedups per scheme across mixes (Figures 11–12)."""
        out: Dict[str, List[float]] = {}
        for prefetcher in prefetchers:
            out[prefetcher] = [
                self.mix_weighted_speedup(mix, prefetcher, config) for mix in mixes
            ]
        return out
