"""Experiment orchestration with result caching.

The figures re-use many runs (every speedup needs the no-prefetch
baseline; every weighted-IPC needs isolated runs), so the runner caches
:func:`run_single_core` results by (workload, prefetcher, config
fingerprint, seed) and exposes the aggregate computations the paper
reports.  Execution and caching live in :class:`~repro.sim.suite.SuiteRunner`:
pass ``jobs`` to fan sweeps over worker processes and ``cache_dir`` to
persist results across invocations.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..workloads.mixes import WorkloadMix
from ..workloads.spec2017 import WorkloadSpec
from .config import SimConfig
from .metrics import weighted_ipc
from .multi_core import run_multi_core
from .single_core import RunResult
from .suite import CellPolicy, SuiteResult, SuiteRunner


class ExperimentRunner:
    """Caching front end over the single- and multi-core drivers.

    ``jobs`` (default 1: fully serial, in-process) and ``cache_dir``
    (default None: in-memory caching only) are forwarded to the
    underlying :class:`SuiteRunner`, which all single-core execution is
    routed through — so figure scripts and ad-hoc sweeps share one
    result cache keyed by the complete config fingerprint.  ``policy``
    (a :class:`CellPolicy`) and ``ledger_path`` configure the sweep
    fault-tolerance layer: per-cell timeout/retry budgets and the JSONL
    run ledger.

    ``engine`` overrides the simulation engine on the base config (the
    name is validated against the registry up front, so a typo fails in
    the orchestrating process with the did-you-mean catalog rather than
    inside a sweep worker).  The engine participates in the config
    fingerprint, so scalar and batched results are cached separately.
    """

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        seed: int = 1,
        jobs: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        policy: Optional[CellPolicy] = None,
        ledger_path: Optional[Union[str, Path]] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.config = config or SimConfig.default()
        if engine is not None:
            from .. import registry
            from ..engine import make_engine  # noqa: F401  (registers engines)

            registry.create("engine", engine)
            self.config = replace(self.config, engine=engine)
        self.seed = seed
        self._suite = SuiteRunner(
            self.config,
            seed=seed,
            jobs=jobs,
            cache_dir=cache_dir,
            policy=policy,
            ledger_path=ledger_path,
        )
        #: Sweep-execution counters (retries, timeouts, salvages, wall
        #: times), shared with the underlying SuiteRunner's stats tree.
        self.stats = self._suite.stats
        #: Legacy alias; tests and tools may inspect the shared cache.
        self._single_cache = self._suite.memory_cache

    # -- single core ------------------------------------------------------------

    def single(
        self,
        workload: WorkloadSpec,
        prefetcher: str,
        config: Optional[SimConfig] = None,
    ) -> RunResult:
        return self._suite.single(workload, prefetcher, config or self.config)

    def sweep(
        self,
        workloads: Sequence[WorkloadSpec],
        prefetchers: Sequence[str],
        config: Optional[SimConfig] = None,
        include_baseline: bool = True,
    ) -> SuiteResult:
        """Run every workload under every scheme (+ the baseline)."""
        return self._suite.sweep(
            workloads, prefetchers, config or self.config, include_baseline
        )

    # -- multi core -------------------------------------------------------------

    def _isolated_config(self, mix_config: SimConfig, cores: int) -> SimConfig:
        """Isolated runs use the *full* shared LLC (§5.3: 1-core 8 MB)."""
        hierarchy = replace(
            mix_config.hierarchy,
            llc_size_per_core=mix_config.hierarchy.llc_size_per_core * cores,
        )
        return replace(mix_config, hierarchy=hierarchy)

    def isolated_ipc(
        self, workload: WorkloadSpec, prefetcher: str, mix_config: SimConfig, cores: int
    ) -> float:
        config = self._isolated_config(mix_config, cores)
        return self.single(workload, prefetcher, config).ipc

    def mix_weighted_speedup(
        self,
        mix: WorkloadMix,
        prefetcher: str,
        config: Optional[SimConfig] = None,
        baseline: str = "none",
    ) -> float:
        """Weighted-IPC speedup of one mix, normalized to ``baseline``.

        Per-core IPCs are weighted by the *no-prefetching* isolated run
        of the same workload (1 core, full shared LLC).  A fixed
        denominator keeps the metric a throughput measure: weighting
        each scheme by its own isolated IPC would penalize exactly the
        schemes that prefetch well.
        """
        config = config or SimConfig.multicore(mix.cores)
        scheme = run_multi_core(mix, prefetcher, config, seed=self.seed)
        base = run_multi_core(mix, baseline, config, seed=self.seed)
        isolated = [
            self.isolated_ipc(spec, baseline, config, mix.cores)
            for spec in mix.workloads
        ]
        scheme_w = weighted_ipc(scheme.per_core_ipc, isolated)
        base_w = weighted_ipc(base.per_core_ipc, isolated)
        return scheme_w / base_w

    def mix_sweep(
        self,
        mixes: Sequence[WorkloadMix],
        prefetchers: Sequence[str],
        config: Optional[SimConfig] = None,
    ) -> Dict[str, List[float]]:
        """Weighted speedups per scheme across mixes (Figures 11–12)."""
        out: Dict[str, List[float]] = {}
        for prefetcher in prefetchers:
            out[prefetcher] = [
                self.mix_weighted_speedup(mix, prefetcher, config) for mix in mixes
            ]
        return out
