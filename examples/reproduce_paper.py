#!/usr/bin/env python3
"""Reproduce any paper table/figure from the experiment registry.

Usage:
    python examples/reproduce_paper.py            # list experiments
    python examples/reproduce_paper.py fig9-10    # run one experiment
    python examples/reproduce_paper.py all        # run everything
    python examples/reproduce_paper.py fig1 --records 50000

Experiments run at a scaled-down trace length by default (pure-Python
simulation of full 1B-instruction SimPoints is infeasible); pass
``--records`` to trade runtime for fidelity.
"""

import argparse

from repro.harness import EXPERIMENTS, run_experiment
from repro.sim import SimConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiment", nargs="?", help="experiment id, or 'all'")
    parser.add_argument(
        "--records", type=int, default=20_000, help="measured loads per run"
    )
    parser.add_argument(
        "--warmup", type=int, default=None, help="warmup loads (default records/4)"
    )
    args = parser.parse_args()

    if not args.experiment:
        print("Available experiments:")
        for experiment in EXPERIMENTS.values():
            print(f"  {experiment.id:10s} {experiment.paper_anchor:12s} {experiment.description}")
        return

    config = SimConfig.quick(
        measure_records=args.records,
        warmup_records=args.warmup if args.warmup is not None else args.records // 4,
    )
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        print(run_experiment(experiment_id, config))
        print()


if __name__ == "__main__":
    main()
