#!/usr/bin/env python3
"""Quickstart: filter a prefetcher with PPF and measure the difference.

Runs the 623.xalancbmk_s model (the paper's showcase benchmark, §6.1)
under four schemes — no prefetching, stock SPP, aggressive SPP without
a filter, and PPF over aggressive SPP — and prints IPC, accuracy,
coverage and lookahead depth side by side.

Usage:
    python examples/quickstart.py [workload-name] [n-records]
"""

import sys

from repro import SPP, SPPConfig, make_ppf_spp, run_single_core, workload_by_name
from repro.harness import render_table
from repro.sim import SimConfig


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "623.xalancbmk_s"
    n_records = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000
    workload = workload_by_name(workload_name)
    config = SimConfig.quick(measure_records=n_records, warmup_records=n_records // 4)

    schemes = [
        ("no prefetching", "none"),
        ("stock SPP (T_p=25, T_f=90)", SPP(SPPConfig.default())),
        (
            "aggressive SPP, unfiltered",
            # Same lowered gate and deep lookahead PPF uses, but with
            # SPP's own confidence picking the fill level.
            SPP(
                SPPConfig(
                    prefetch_threshold=10,
                    fill_threshold=50,
                    max_depth=24,
                    lookahead_threshold=10,
                )
            ),
        ),
        ("PPF over aggressive SPP", make_ppf_spp()),
    ]
    results = [(label, run_single_core(workload, pf, config)) for label, pf in schemes]
    baseline_ipc = results[0][1].ipc
    baseline_misses = results[0][1].l2_misses

    rows = []
    for label, result in results:
        coverage = (
            (baseline_misses - result.l2_misses) / baseline_misses
            if baseline_misses
            else 0.0
        )
        rows.append(
            (
                label,
                result.ipc,
                result.ipc / baseline_ipc,
                result.accuracy,
                coverage,
                result.average_lookahead_depth,
            )
        )
    print(
        render_table(
            ["scheme", "IPC", "speedup", "accuracy", "L2 coverage", "avg depth"],
            rows,
            title=f"PPF quickstart — {workload.name} ({workload.description})",
        )
    )
    print(
        "\nPPF lets SPP speculate deeper (higher avg depth) while *raising*"
        "\naccuracy — the coverage/accuracy trade-off the paper breaks."
    )


if __name__ == "__main__":
    main()
