#!/usr/bin/env python3
"""PPF over a *different* prefetcher: the §3.2 generality claim.

The paper stresses that PPF "can be adapted to be used over any
underlying prefetcher".  This example wraps the perceptron filter
around BOP and around the stride prefetcher — neither exports SPP's
signature/confidence metadata, so the filter runs on the
prefetcher-agnostic feature subset — and compares filtered vs
unfiltered behaviour on a pointer-chasing workload where both
baselines over-prefetch.

Usage:
    python examples/filter_any_prefetcher.py [n-records]
"""

import sys

from repro import PPF, BOP, run_single_core, workload_by_name
from repro.core.features import production_features
from repro.harness import render_table
from repro.prefetchers import StridePrefetcher
from repro.sim import SimConfig

#: Features that need no prefetcher-specific metadata (§3.2: "Some of
#: the features we developed use information derived directly from
#: program execution, agnostic to the underlying prefetcher").
AGNOSTIC = {"phys_address", "cache_line", "page_address", "pc_path_hash", "pc_xor_depth"}


def agnostic_features():
    return [f for f in production_features() if f.name in AGNOSTIC]


def main() -> None:
    n_records = int(sys.argv[1]) if len(sys.argv) > 1 else 25_000
    config = SimConfig.quick(measure_records=n_records, warmup_records=n_records // 4)
    workload = workload_by_name("605.mcf_s")

    schemes = [
        ("BOP, unfiltered", BOP()),
        ("PPF over BOP", PPF(underlying=BOP(), features=agnostic_features())),
        ("stride, unfiltered", StridePrefetcher()),
        (
            "PPF over stride",
            PPF(underlying=StridePrefetcher(), features=agnostic_features()),
        ),
    ]
    baseline = run_single_core(workload, "none", config)
    rows = []
    for label, prefetcher in schemes:
        result = run_single_core(workload, prefetcher, config)
        rows.append(
            (
                label,
                result.ipc / baseline.ipc,
                result.prefetches_issued,
                result.accuracy,
            )
        )
    print(
        render_table(
            ["scheme", "speedup", "issued", "accuracy"],
            rows,
            title=f"Filtering arbitrary prefetchers — {workload.name}",
        )
    )
    print(
        "\nThe filter raises accuracy for prefetchers it was never tuned"
        "\nfor, using only program-derived features (§3.2)."
    )


if __name__ == "__main__":
    main()
