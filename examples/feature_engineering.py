#!/usr/bin/env python3
"""Feature engineering with the §5.5 methodology.

PPF's headline design insight is that the filter is only as good as its
features, and that features can be *audited statistically*: train the
filter, then correlate each feature's weights with prefetch outcomes.
This example

1. defines a brand-new custom feature (``delta ⊕ page-offset``),
2. runs the recorded feature study over a few workloads,
3. prints every feature's global Pearson factor — showing where the
   custom feature lands against the paper's nine and the rejected
   Last-Signature feature,
4. applies the paper's trimming rule (drop redundant pairs, keep the
   strongest) and prints the surviving set.

Usage:
    python examples/feature_engineering.py [n-records]
"""

import sys

from repro import memory_intensive_subset
from repro.core.features import Feature, FeatureContext, production_features
from repro.core.features import _last_signature  # the Figure 6 reject example
from repro.harness import render_table
from repro.memory import encode_delta
from repro.analysis import run_feature_study
from repro.sim import SimConfig


def delta_xor_page_offset(ctx: FeatureContext) -> int:
    """Custom feature: predicted delta vs position inside the page."""
    return (encode_delta(ctx.delta) << 6) ^ ((ctx.candidate_addr >> 6) & 0x3F)


def main() -> None:
    n_records = int(sys.argv[1]) if len(sys.argv) > 1 else 15_000
    config = SimConfig.quick(measure_records=n_records, warmup_records=n_records // 4)

    features = production_features() + [
        Feature("last_signature", 4096, _last_signature),
        Feature("delta_xor_page_offset", 2048, delta_xor_page_offset),
    ]
    workloads = memory_intensive_subset()[:4]
    study = run_feature_study(workloads, features, config)

    global_p = study.global_pearson()
    rows = sorted(global_p.items(), key=lambda kv: abs(kv[1]), reverse=True)
    print(
        render_table(
            ["feature", "global Pearson factor"],
            rows,
            title="Feature audit (paper's nine + last_signature + custom)",
        )
    )

    survivors = study.trim(redundancy_threshold=0.9)
    print("\nSurvivors after the redundancy trim "
          f"({len(survivors)} of {len(features)}):")
    for feature in survivors:
        print(f"  - {feature.name} ({feature.table_entries} weight entries)")


if __name__ == "__main__":
    main()
