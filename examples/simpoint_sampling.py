#!/usr/bin/env python3
"""SimPoint-style sampling: simulate slices, not whole traces (§5.3).

The paper's methodology never simulates whole programs: SimPoint picks
representative weighted slices and per-application results are the
weighted mean over slices.  This example reproduces that workflow:

1. generate a long phase-changing trace (the xalancbmk model),
2. cluster its windows and select SimPoints with weights,
3. simulate PPF vs no-prefetching on *only* the selected windows,
4. compare the SimPoint-weighted speedup against the full-trace truth.

Usage:
    python examples/simpoint_sampling.py [n-records] [window-size]
"""

import sys

from repro import workload_by_name
from repro.cpu import O3Core
from repro.harness import render_table
from repro.memory import MemoryHierarchy
from repro.sim import SimConfig, make_prefetcher, run_single_core
from repro.workloads import select_simpoints, weighted_mean, window_records


def simulate_records(records, scheme, config):
    """IPC of one record list under one scheme (with its own warmup)."""
    hierarchy = MemoryHierarchy(
        num_cores=1, config=config.hierarchy, dram_config=config.dram,
        prefetchers=[make_prefetcher(scheme)],
    )
    core = O3Core(0, hierarchy, config.core)
    warmup = len(records) // 2
    for rec in records[:warmup]:
        core.step(rec)
    hierarchy.reset_stats()
    core.begin_measurement()
    for rec in records[warmup:]:
        core.step(rec)
    core.drain()
    return core.result().ipc


def main() -> None:
    n_records = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    window_size = int(sys.argv[2]) if len(sys.argv) > 2 else 5_000
    workload = workload_by_name("623.xalancbmk_s")
    config = SimConfig.default()
    trace = list(workload.trace(n_records, seed=1))

    simpoints = select_simpoints(trace, window_size, max_clusters=4)
    rows = [(sp.window_index, f"{sp.weight:.2f}") for sp in simpoints]
    print(render_table(["window", "weight"], rows, title="Selected SimPoints"))

    speedups = []
    for sp in simpoints:
        window = window_records(trace, window_size, sp.window_index)
        base = simulate_records(window, "none", config)
        ppf = simulate_records(window, "ppf", config)
        speedups.append(ppf / base)
    sampled = weighted_mean(speedups, [sp.weight for sp in simpoints])

    full_config = SimConfig.quick(
        measure_records=n_records // 2, warmup_records=n_records // 2
    )
    full_base = run_single_core(workload, "none", full_config)
    full_ppf = run_single_core(workload, "ppf", full_config)
    full = full_ppf.ipc / full_base.ipc

    simulated = len(simpoints) * window_size
    print(f"\nSimPoint-weighted PPF speedup : {sampled:.3f} "
          f"({simulated} of {n_records} records simulated per scheme)")
    print(f"Full-trace PPF speedup        : {full:.3f}")
    print(f"Sampling error                : {100 * abs(sampled - full) / full:.1f}%")
    print(
        "\nNote: at toy trace scale the estimate is conservative — each"
        "\nwindow's warmup is too short to fully train SPP/PPF, unlike the"
        "\npaper's 200M-instruction warmups. Raise the window size to"
        "\nwatch the sampling error shrink."
    )


if __name__ == "__main__":
    main()
