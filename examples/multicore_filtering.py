#!/usr/bin/env python3
"""Multi-core filtering: PPF's margin grows when resources are shared.

Builds a small set of 4-core memory-intensive mixes (shared LLC and
DRAM channels, §5.3) and compares SPP's and PPF's weighted-IPC speedups
over no prefetching.  The paper's §6.2 observation: filtering useless
prefetches matters *more* in multi-core because pollution lands in
shared structures.

Usage:
    python examples/multicore_filtering.py [n-mixes] [n-records]
"""

import sys

from repro import memory_intensive_mixes
from repro.harness import render_table
from repro.sim import ExperimentRunner, SimConfig, geometric_mean


def main() -> None:
    n_mixes = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    n_records = int(sys.argv[2]) if len(sys.argv) > 2 else 8_000
    cores = 4
    config = SimConfig.multicore(cores)
    config.warmup_records = n_records // 4
    config.measure_records = n_records

    mixes = memory_intensive_mixes(cores, n_mixes, seed=7)
    runner = ExperimentRunner(config)
    rows = []
    per_scheme = {"spp": [], "ppf": []}
    for mix in mixes:
        row = [mix.name + " (" + ", ".join(w.name.split(".")[1] for w in mix.workloads) + ")"]
        for scheme in ("spp", "ppf"):
            speedup = runner.mix_weighted_speedup(mix, scheme, config)
            per_scheme[scheme].append(speedup)
            row.append(speedup)
        rows.append(row)
    rows.append(
        ["geomean", geometric_mean(per_scheme["spp"]), geometric_mean(per_scheme["ppf"])]
    )
    print(
        render_table(
            ["4-core mix", "spp", "ppf"],
            rows,
            title="Weighted-IPC speedup over no prefetching (shared LLC + DRAM)",
        )
    )
    gain = 100 * (
        geometric_mean(per_scheme["ppf"]) / geometric_mean(per_scheme["spp"]) - 1
    )
    print(f"\nPPF over SPP on these mixes: {gain:+.2f}%")


if __name__ == "__main__":
    main()
