#!/usr/bin/env python3
"""The Figure 1 story: aggressiveness without a filter wastes bandwidth.

Sweeps SPP's lookahead to fixed depths on the 603.bwaves_s model and
prints the normalized IPC / TOTAL_PF / GOOD_PF series (paper Figure 1),
then shows what PPF achieves at full aggressiveness — more coverage
*and* more accuracy at once.

Usage:
    python examples/aggressive_tuning.py [n-records]
"""

import sys

from repro import make_ppf_spp, run_single_core, workload_by_name
from repro.harness import render_table
from repro.harness.figure01 import report, run_figure1
from repro.sim import SimConfig


def main() -> None:
    n_records = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    config = SimConfig.quick(measure_records=n_records, warmup_records=n_records // 4)

    result = run_figure1(config=config)
    print(report(result))
    print(
        f"\nTOTAL_PF outgrows GOOD_PF: {result.overprefetch_grows_faster}"
        f"\nIPC degrades past the knee: {result.ipc_degrades}"
    )

    workload = workload_by_name("603.bwaves_s")
    baseline = run_single_core(workload, "none", config)
    ppf = make_ppf_spp()
    filtered = run_single_core(workload, ppf, config)
    rows = [
        (
            "PPF over aggressive SPP",
            filtered.ipc / baseline.ipc,
            filtered.accuracy,
            filtered.average_lookahead_depth,
        )
    ]
    print()
    print(
        render_table(
            ["scheme", "speedup", "accuracy", "avg depth"],
            rows,
            title="The filter resolves the trade-off",
        )
    )


if __name__ == "__main__":
    main()
