#!/usr/bin/env python3
"""Where the bandwidth goes: the waste mechanics behind Figure 1.

Breaks DRAM traffic down per scheme on the bwaves model: demand vs
prefetch accesses, queueing delay, useless-prefetch evictions and
prefetch-queue drops.  The narrative: unfiltered aggressive SPP turns a
large share of the bus over to prefetches with a high waste rate; PPF
keeps the share but strips the waste.

Usage:
    python examples/traffic_analysis.py [workload] [n-records]
"""

import sys

from repro.analysis.traffic import compare_traffic, report
from repro.sim import SimConfig
from repro.workloads import workload_by_name


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "603.bwaves_s"
    n_records = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    workload = workload_by_name(workload_name)
    config = SimConfig.quick(measure_records=n_records, warmup_records=n_records // 4)

    breakdowns = compare_traffic(
        workload, schemes=("none", "spp", "ppf"), config=config
    )
    print(report(breakdowns, workload.name))

    none, spp, ppf = breakdowns
    print(
        f"\nPrefetching converts demand DRAM traffic into prefetch traffic"
        f"\n  demand DRAM accesses: {none.demand_dram} (none) -> "
        f"{spp.demand_dram} (spp) -> {ppf.demand_dram} (ppf)"
        f"\n\nThe queue-delay column is the Figure 1 cost in the raw: every"
        f"\nprefetch occupies the bus, so demands wait longer behind a busier"
        f"\nchannel — worth it only while the prefetches are accurate."
    )


if __name__ == "__main__":
    main()
